"""Per-paragraph compiled artifacts shared across QA predictions.

Every :meth:`SpanScoringQA.predict` used to re-derive the same
context-side tables — tokenization, sentence bounds, POS tags, the typed
candidate-span sets, per-model span-scoring preps — even though real
workloads (several SQuAD questions per paragraph, ASE re-asking the same
sentence subsets, open-context re-asks, ablation sweeps) hit the same
paragraph over and over.  A :class:`CompiledContext` computes each table
lazily, once per context string, and a content-keyed, byte-bounded
:class:`ContextCompiler` LRU shares the artifacts across all QA pairs,
clip iterations, batch examples, and service requests.

Exactness contract: every table is the value the inline derivation in
:meth:`SpanScoringQA._ranked_spans` would produce, so predictions with
the compiler on and off are bit-identical
(``tests/test_compiled_context.py`` asserts this over randomized
paragraphs for all four span-scoring models).

Memory contract: the compiler's byte budget is enforced from a one-shot
estimate taken when a context is first compiled; tables that materialize
later (tags, span sets, preps) are charged by a per-token amortized
constant in that estimate rather than re-measured, so the budget is a
close guideline, not an exact invariant (see
:class:`repro.utils.cache.LRUCache`).
"""

from __future__ import annotations

import contextlib
import threading

from repro.qa.answer_types import AnswerType, candidate_spans
from repro.text.tokenizer import Token, tokenize
from repro.utils.cache import LRUCache, MISSING

__all__ = ["CompiledContext", "ContextCompiler", "estimate_compiled_bytes"]

# Typed span extraction is identical for the three capitalized-run types;
# sharing one slot avoids recomputing it when PERSON and ENTITY questions
# hit the same paragraph.
_SPAN_KIND = {
    AnswerType.NUMBER: "number",
    AnswerType.PERSON: "caps",
    AnswerType.PLACE: "caps",
    AnswerType.ENTITY: "caps",
    AnswerType.PHRASE: "phrase",
}

# Per-context caches of question-dependent preps reset above this many
# distinct questions; entries are pure values, so clearing only costs
# recomputation (same idiom as the trigram term cache).
_MAX_PREPS = 64


class CompiledContext:
    """Lazily-computed, shareable artifacts of one context paragraph.

    Attributes:
        text: the raw context string (the cache key's content).
        tokens: ``tokenize(text)``, computed eagerly — every consumer
            needs it, and its length drives the byte estimate.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[Token] = tokenize(text)
        self._sentence_bounds: list[tuple[int, int]] | None = None
        self._tags: list[str] | None = None
        self._span_kinds: dict[str, frozenset[tuple[int, int]]] = {}
        self._span_sets: dict[
            AnswerType, tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]
        ] = {}
        # (prep_key, question terms) -> span_prep output; (key, tag) ->
        # question-independent derived values (e.g. embedding matrices).
        self._preps: dict = {}
        self._derived: dict = {}

    # ------------------------------------------------------ context tables
    def sentence_bounds(self, model) -> list[tuple[int, int]]:
        """``SpanScoringQA.sentence_bounds(tokens)``, computed once."""
        bounds = self._sentence_bounds
        if bounds is None:
            bounds = self._sentence_bounds = model.sentence_bounds(self.tokens)
        return bounds

    def pos_tags(self, tagger) -> list[str]:
        """POS tags of the token texts, computed once.

        All span-scoring models share one class-level tagger, so the
        first caller's tagger fills the slot for everyone.
        """
        tags = self._tags
        if tags is None:
            tags = self._tags = tagger.tag([t.text for t in self.tokens])
        return tags

    def _kind_spans(self, kind: str, answer_type: AnswerType) -> frozenset:
        spans = self._span_kinds.get(kind)
        if spans is None:
            spans = frozenset(candidate_spans(self.tokens, answer_type))
            self._span_kinds[kind] = spans
        return spans

    def span_sets(
        self, answer_type: AnswerType
    ) -> tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]:
        """The ``(typed, all)`` candidate-span sets for one answer type.

        ``typed`` is exactly ``set(candidate_spans(tokens, answer_type))``
        and ``all`` the enlarged pool :meth:`SpanScoringQA._ranked_spans`
        scores (typed spans plus the PHRASE fallback for ENTITY questions
        and for types that produced nothing).
        """
        cached = self._span_sets.get(answer_type)
        if cached is None:
            typed = self._kind_spans(_SPAN_KIND[answer_type], answer_type)
            spans = typed
            if answer_type is AnswerType.ENTITY or not spans:
                spans = spans | self._kind_spans("phrase", AnswerType.PHRASE)
            cached = self._span_sets[answer_type] = (typed, spans)
        return cached

    # ------------------------------------------------- per-model artifacts
    def prep(self, model, profile):
        """The model's ``span_prep`` output, memoized per question terms.

        Preps are pure functions of (model, question terms, tokens) —
        answer type never enters span scoring — so one table serves every
        re-ask of the same question against this paragraph.
        """
        key = (model.prep_key, profile.terms)
        prep = self._preps.get(key, MISSING)
        if prep is MISSING:
            if len(self._preps) > _MAX_PREPS:
                self._preps.clear()
            prep = model.span_prep(profile, self.tokens, compiled=self)
            self._preps[key] = prep
        return prep

    def derive(self, key, factory):
        """Memoize a question-independent derived value (e.g. the sliced
        embedding matrix) under ``key``; ``factory`` runs at most once."""
        value = self._derived.get(key, MISSING)
        if value is MISSING:
            value = factory()
            self._derived[key] = value
        return value


def estimate_compiled_bytes(compiled: CompiledContext) -> int:
    """Estimated steady-state footprint of one compiled context.

    Taken at insert time, before the lazy tables exist, so it charges a
    per-token amortized constant covering tokens, tags, bounds, span sets
    and a typical prep population (the embedding matrix — 64 float64
    dims per word — dominates).
    """
    return 256 + len(compiled.text) + 700 * len(compiled.tokens)


class ContextCompiler:
    """Content-keyed LRU of :class:`CompiledContext` artifacts.

    One compiler is shared per span-scoring model instance (lazily
    created by :class:`~repro.qa.base.SpanScoringQA`) and therefore —
    since the trained reader is reused by ASE, the informativeness
    scorer, the simulated baselines, and every pipeline built on the
    same artifacts — effectively per deployment.  Thread-safe: the LRU
    is locked, and the lazy tables inside a :class:`CompiledContext` are
    idempotent pure values, so a racing double-compute is waste, never
    wrongness.
    """

    def __init__(
        self,
        capacity: int = 1024,
        max_bytes: int | None = 48 * 1024 * 1024,
        scratch_capacity: int = 256,
        scratch_max_bytes: int | None = 16 * 1024 * 1024,
    ) -> None:
        self.cache = LRUCache(
            capacity=capacity,
            size_estimator=estimate_compiled_bytes,
            max_bytes=max_bytes,
        )
        # Short-reuse texts — the clip search's candidate evidences,
        # identical across the adjacent questions of one paragraph but
        # dead afterwards — compile into this smaller side cache (see
        # :meth:`transient`), so they never evict long-lived paragraph
        # artifacts from the main LRU.
        self.scratch = LRUCache(
            capacity=scratch_capacity,
            size_estimator=estimate_compiled_bytes,
            max_bytes=scratch_max_bytes,
        )
        self._transient = threading.local()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_transient"]  # thread-local: rebuilt empty on unpickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._transient = threading.local()

    @property
    def in_transient(self) -> bool:
        """True while the calling thread is inside :meth:`transient`."""
        return getattr(self._transient, "depth", 0) > 0

    @contextlib.contextmanager
    def transient(self):
        """Route this thread's compilations to the scratch cache.

        Used by callers predicting over short-lived texts (the
        informativeness scorer's candidate evidences: re-encounters are
        served from string/node-set memos, but the *same* candidate text
        recurs for each question of a shared paragraph).  Thread-local,
        so concurrent service threads predicting over real paragraphs
        keep filling the main cache.
        """
        self._transient.depth = getattr(self._transient, "depth", 0) + 1
        try:
            yield
        finally:
            self._transient.depth -= 1

    def compile(self, context: str) -> CompiledContext:
        """The (possibly cached) compiled artifact for ``context``.

        Transient compilations check the scratch cache, then *peek* the
        main cache (a candidate evidence equal to a known paragraph
        reuses its artifact) without touching the main cache's hit/miss
        counters — so the ``compiled_contexts`` stats in profiles and
        ``/stats`` keep measuring genuine paragraph traffic, not the
        firehose of one-shot candidate probes.
        """
        if self.in_transient:
            compiled = self.scratch.get(context, MISSING)
            if compiled is not MISSING:
                return compiled
            compiled = self.cache.peek(context, MISSING)
            if compiled is not MISSING:
                return compiled
            compiled = CompiledContext(context)
            self.scratch.put(context, compiled)
            return compiled
        compiled = self.cache.get(context, MISSING)
        if compiled is MISSING:
            compiled = CompiledContext(context)
            self.cache.put(context, compiled)
        return compiled

    def snapshot(self):
        """Hit/miss/size/bytes counters of the main (paragraph) LRU."""
        return self.cache.snapshot()
