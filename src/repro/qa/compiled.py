"""Per-paragraph compiled artifacts shared across QA predictions.

Every :meth:`SpanScoringQA.predict` used to re-derive the same
context-side tables — tokenization, sentence bounds, POS tags, the typed
candidate-span sets, per-model span-scoring preps — even though real
workloads (several SQuAD questions per paragraph, ASE re-asking the same
sentence subsets, open-context re-asks, ablation sweeps) hit the same
paragraph over and over.  A :class:`CompiledContext` computes each table
lazily, once per context string, and a content-keyed, byte-bounded
:class:`ContextCompiler` LRU shares the artifacts across all QA pairs,
clip iterations, batch examples, and service requests.

Exactness contract: every table is the value the inline derivation in
:meth:`SpanScoringQA._ranked_spans` would produce, so predictions with
the compiler on and off are bit-identical
(``tests/test_compiled_context.py`` asserts this over randomized
paragraphs for all four span-scoring models).

Memory contract: :func:`estimate_compiled_bytes` *measures* the tables a
context has actually materialized, and every lazy fill notifies the
owning cache (see :meth:`CompiledContext.bind_accounting` /
:meth:`repro.utils.cache.LRUCache.reaccount`), so the compiler's byte
budget is an invariant over the measured footprint — not a guess taken
at insert time.

Snapshot contract: compiled artifacts :meth:`export_state` /
:meth:`import_state` across process boundaries for the pipeline snapshot
plane (:mod:`repro.engine.snapshot`).  Preps are re-keyed from the
process-local ``prep_key`` to the owning model's stable ``name`` on
export, and imported states hydrate workers' caches read-through — a
worker's first prediction against a known paragraph reuses the parent's
tables instead of recompiling.
"""

from __future__ import annotations

import contextlib
import pickle
import threading

from repro.qa.answer_types import AnswerType, candidate_spans
from repro.text.sentences import Sentence, split_sentences
from repro.text.tokenizer import Token, tokenize
from repro.utils.cache import LRUCache, MISSING

__all__ = ["CompiledContext", "ContextCompiler", "estimate_compiled_bytes"]

# Typed span extraction is identical for the three capitalized-run types;
# sharing one slot avoids recomputing it when PERSON and ENTITY questions
# hit the same paragraph.
_SPAN_KIND = {
    AnswerType.NUMBER: "number",
    AnswerType.PERSON: "caps",
    AnswerType.PLACE: "caps",
    AnswerType.ENTITY: "caps",
    AnswerType.PHRASE: "phrase",
}

# Per-context caches of question-dependent preps reset above this many
# distinct questions; entries are pure values, so clearing only costs
# recomputation (same idiom as the trigram term cache).
_MAX_PREPS = 64


class CompiledContext:
    """Lazily-computed, shareable artifacts of one context paragraph.

    Attributes:
        text: the raw context string (the cache key's content).
        tokens: ``tokenize(text)``, computed eagerly — every consumer
            needs it, and its length drives the byte estimate.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[Token] = tokenize(text)
        self._sentence_bounds: list[tuple[int, int]] | None = None
        self._tags: list[str] | None = None
        self._span_kinds: dict[str, frozenset[tuple[int, int]]] = {}
        self._span_sets: dict[
            AnswerType, tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]
        ] = {}
        # (prep_key, question terms) -> span_prep output; (key, tag) ->
        # question-independent derived values (e.g. embedding matrices).
        self._preps: dict = {}
        self._derived: dict = {}
        # prep_key -> model.name, so preps can be re-keyed stably when the
        # artifact is exported across a process boundary.
        self._prep_names: dict[int, str | None] = {}
        # (model name, question terms) -> prep, imported from a snapshot;
        # consulted on prep misses, promoted into _preps on first use.
        self._imported_preps: dict = {}
        # ASE-level artifacts: the paragraph's sentence split and the
        # per-question single-sentence prediction batches.
        self._sentences: tuple[Sentence, ...] | None = None
        self._sentence_preds: dict[str, tuple] = {}
        # (model name, question) -> final AnswerPrediction.  Predictions
        # are pure functions of (trained model, question, text), so the
        # whole result memoizes — ASE's subset loop re-asks the same
        # question of the same joined text constantly, and hydrated
        # workers skip span scoring entirely on known pairs.
        self._predictions: dict = {}
        # Owning-cache notification, installed by bind_accounting();
        # called after every lazy fill so byte accounting stays measured.
        self._accounting = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The accounting binding closes over the owning cache; the
        # receiving process re-binds when it caches the artifact.
        state["_accounting"] = None
        return state

    # -------------------------------------------------------- byte accounting
    def bind_accounting(self, cache: LRUCache, key) -> None:
        """Re-measure this artifact in ``cache`` whenever a table fills in."""
        self._accounting = (cache, key)

    def _grown(self) -> None:
        binding = self._accounting
        if binding is not None:
            cache, key = binding
            cache.reaccount(key)

    # ------------------------------------------------------ context tables
    def sentence_bounds(self, model) -> list[tuple[int, int]]:
        """``SpanScoringQA.sentence_bounds(tokens)``, computed once."""
        bounds = self._sentence_bounds
        if bounds is None:
            bounds = self._sentence_bounds = model.sentence_bounds(self.tokens)
            self._grown()
        return bounds

    def pos_tags(self, tagger) -> list[str]:
        """POS tags of the token texts, computed once.

        All span-scoring models share one class-level tagger, so the
        first caller's tagger fills the slot for everyone.
        """
        tags = self._tags
        if tags is None:
            tags = self._tags = tagger.tag([t.text for t in self.tokens])
            self._grown()
        return tags

    def _kind_spans(self, kind: str, answer_type: AnswerType) -> frozenset:
        spans = self._span_kinds.get(kind)
        if spans is None:
            spans = frozenset(candidate_spans(self.tokens, answer_type))
            self._span_kinds[kind] = spans
            self._grown()
        return spans

    def span_sets(
        self, answer_type: AnswerType
    ) -> tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]:
        """The ``(typed, all)`` candidate-span sets for one answer type.

        ``typed`` is exactly ``set(candidate_spans(tokens, answer_type))``
        and ``all`` the enlarged pool :meth:`SpanScoringQA._ranked_spans`
        scores (typed spans plus the PHRASE fallback for ENTITY questions
        and for types that produced nothing).
        """
        cached = self._span_sets.get(answer_type)
        if cached is None:
            typed = self._kind_spans(_SPAN_KIND[answer_type], answer_type)
            spans = typed
            if answer_type is AnswerType.ENTITY or not spans:
                spans = spans | self._kind_spans("phrase", AnswerType.PHRASE)
            cached = self._span_sets[answer_type] = (typed, spans)
            self._grown()
        return cached

    # ----------------------------------------------------- sentence artifacts
    def sentences(self) -> tuple[Sentence, ...]:
        """``split_sentences(text)``, computed once per paragraph.

        ASE's subset search re-splits the same paragraph for every
        question; the compiled split serves them all (and rides the
        snapshot to workers).
        """
        sents = self._sentences
        if sents is None:
            sents = self._sentences = tuple(split_sentences(self.text))
            self._grown()
        return sents

    def sentence_predictions(self, question: str, factory) -> tuple:
        """Per-question single-sentence prediction batch, memoized.

        ``factory`` must produce the model's ``predict_batch(question,
        [sentence texts])`` output; it runs at most once per distinct
        question (bounded like the prep table).
        """
        preds = self._sentence_preds.get(question, MISSING)
        if preds is MISSING:
            if len(self._sentence_preds) > _MAX_PREPS:
                self._sentence_preds.clear()
            preds = tuple(factory())
            self._sentence_preds[question] = preds
            self._grown()
        return preds

    def prediction(self, name: str | None, question: str, factory):
        """The model's final prediction for ``question``, memoized.

        ``factory`` runs the real span scoring at most once per (model
        name, question); the table is bounded like the prep table and
        rides the snapshot, so a worker's first predict over a known
        (question, paragraph) pair is a dictionary lookup.
        """
        key = (name, question)
        pred = self._predictions.get(key, MISSING)
        if pred is MISSING:
            if len(self._predictions) > _MAX_PREPS:
                self._predictions.clear()
            pred = factory()
            self._predictions[key] = pred
            self._grown()
        return pred

    # ------------------------------------------------- per-model artifacts
    def prep(self, model, profile):
        """The model's ``span_prep`` output, memoized per question terms.

        Preps are pure functions of (model, question terms, tokens) —
        answer type never enters span scoring — so one table serves every
        re-ask of the same question against this paragraph.  A miss first
        consults preps imported from a pipeline snapshot (keyed by the
        model's stable ``name``) before paying the derivation.
        """
        key = (model.prep_key, profile.terms)
        prep = self._preps.get(key, MISSING)
        if prep is MISSING:
            if len(self._preps) > _MAX_PREPS:
                self._preps.clear()
            name = getattr(model, "name", None)
            prep = self._imported_preps.get((name, profile.terms), MISSING)
            if prep is MISSING:
                prep = model.span_prep(profile, self.tokens, compiled=self)
            self._preps[key] = prep
            self._prep_names[key[0]] = name
            self._grown()
        return prep

    def derive(self, key, factory):
        """Memoize a question-independent derived value (e.g. the sliced
        embedding matrix) under ``key``; ``factory`` runs at most once."""
        value = self._derived.get(key, MISSING)
        if value is MISSING:
            value = factory()
            self._derived[key] = value
            self._grown()
        return value

    # -------------------------------------------------------- snapshot plane
    def export_state(self) -> dict:
        """A picklable state dict for the pipeline snapshot plane.

        Span sets export as sorted lists (frozenset pickles are
        iteration-order dependent) and preps re-key from the
        process-local ``prep_key`` to the owning model's stable name;
        preps that fail to pickle are dropped (the worker re-derives
        them).  Derived slots are skipped — their keys embed process-
        local identities and their values rebuild from exported preps.
        Export→import→export is byte-identical, which the snapshot tests
        assert.
        """
        preps: dict = {}
        preps.update(self._imported_preps)
        for (prep_key, terms), value in self._preps.items():
            name = self._prep_names.get(prep_key)
            if name is not None:
                preps[(name, terms)] = value
        safe_preps: dict = {}
        for key, value in preps.items():
            if _picklable(value):
                safe_preps[key] = value
        return {
            "text": self.text,
            "tokens": list(self.tokens),
            "sentence_bounds": self._sentence_bounds,
            "tags": self._tags,
            "span_kinds": {
                kind: sorted(spans)
                for kind, spans in sorted(self._span_kinds.items())
            },
            "sentences": self._sentences,
            "sentence_preds": {
                question: preds
                for question, preds in self._sentence_preds.items()
                if _picklable(preds)
            },
            "predictions": {
                key: pred
                for key, pred in self._predictions.items()
                if _picklable(pred)
            },
            "preps": safe_preps,
        }

    @classmethod
    def import_state(cls, state: dict) -> "CompiledContext":
        """Rebuild a compiled artifact from :meth:`export_state` output."""
        compiled = cls.__new__(cls)
        compiled.text = state["text"]
        compiled.tokens = list(state["tokens"])
        compiled._sentence_bounds = state["sentence_bounds"]
        compiled._tags = state["tags"]
        compiled._span_kinds = {
            kind: frozenset(tuple(span) for span in spans)
            for kind, spans in state["span_kinds"].items()
        }
        compiled._span_sets = {}
        compiled._preps = {}
        compiled._derived = {}
        compiled._prep_names = {}
        compiled._imported_preps = dict(state["preps"])
        sentences = state["sentences"]
        compiled._sentences = tuple(sentences) if sentences is not None else None
        compiled._sentence_preds = dict(state["sentence_preds"])
        compiled._predictions = dict(state["predictions"])
        compiled._accounting = None
        return compiled


def _picklable(value) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def _opaque_bytes(value, depth: int = 0) -> int:
    """Measured footprint of an opaque prep/derived value.

    Recurses through the container shapes preps actually use (tuples of
    arrays, dicts of floats) with array buffers measured exactly via
    ``nbytes``; unknown leaves get a flat object charge.
    """
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return 16 + nbytes
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, bytes):
        return 33 + len(value)
    if value is None or isinstance(value, (int, float, bool)):
        return 28
    if depth >= 4:
        return 64
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(_opaque_bytes(item, depth + 1) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            _opaque_bytes(k, depth + 1) + _opaque_bytes(v, depth + 1)
            for k, v in value.items()
        )
    return 128


def estimate_compiled_bytes(compiled: CompiledContext) -> int:
    """Measured footprint of one compiled context's materialized tables.

    Pure function of the tables currently present: called at insert time
    *and* re-run by :meth:`LRUCache.reaccount` after every lazy fill (see
    :meth:`CompiledContext.bind_accounting`), so the owning cache's byte
    accounting always equals this measure over its current values.
    """
    total = 256 + len(compiled.text)
    total += 72 * len(compiled.tokens) + sum(
        len(token.text) for token in compiled.tokens
    )
    if compiled._sentence_bounds is not None:
        total += 64 + 16 * len(compiled._sentence_bounds)
    if compiled._tags is not None:
        total += 64 + 24 * len(compiled._tags)
    for spans in compiled._span_kinds.values():
        total += 64 + 80 * len(spans)
    for typed, spans in compiled._span_sets.values():
        # The pair usually aliases the kind sets; a distinct union
        # (ENTITY fallback) is a new frozenset and charged as one.
        total += 32 if spans is typed else 64 + 80 * len(spans)
    if compiled._sentences is not None:
        total += 64 + sum(
            88 + len(sentence.text) for sentence in compiled._sentences
        )
    for question, preds in compiled._sentence_preds.items():
        total += 56 + len(question) + sum(
            112 + len(pred.text) for pred in preds
        )
    for (name, question), pred in compiled._predictions.items():
        total += 56 + len(name or "") + len(question) + 112 + len(pred.text)
    for prep in compiled._preps.values():
        total += 96 + _opaque_bytes(prep)
    for key, prep in compiled._imported_preps.items():
        total += 96 + _opaque_bytes(prep)
    for value in compiled._derived.values():
        total += 96 + _opaque_bytes(value)
    return total


class ContextCompiler:
    """Content-keyed LRU of :class:`CompiledContext` artifacts.

    One compiler is shared per span-scoring model instance (lazily
    created by :class:`~repro.qa.base.SpanScoringQA`) and therefore —
    since the trained reader is reused by ASE, the informativeness
    scorer, the simulated baselines, and every pipeline built on the
    same artifacts — effectively per deployment.  Thread-safe: the LRU
    is locked, and the lazy tables inside a :class:`CompiledContext` are
    idempotent pure values, so a racing double-compute is waste, never
    wrongness.
    """

    def __init__(
        self,
        capacity: int = 1024,
        max_bytes: int | None = 48 * 1024 * 1024,
        scratch_capacity: int = 256,
        scratch_max_bytes: int | None = 16 * 1024 * 1024,
    ) -> None:
        self.cache = LRUCache(
            capacity=capacity,
            size_estimator=estimate_compiled_bytes,
            max_bytes=max_bytes,
        )
        # Short-reuse texts — the clip search's candidate evidences,
        # identical across the adjacent questions of one paragraph but
        # dead afterwards — compile into this smaller side cache (see
        # :meth:`transient`), so they never evict long-lived paragraph
        # artifacts from the main LRU.
        self.scratch = LRUCache(
            capacity=scratch_capacity,
            size_estimator=estimate_compiled_bytes,
            max_bytes=scratch_max_bytes,
        )
        self._transient = threading.local()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_transient"]  # thread-local: rebuilt empty on unpickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._transient = threading.local()

    @property
    def in_transient(self) -> bool:
        """True while the calling thread is inside :meth:`transient`."""
        return getattr(self._transient, "depth", 0) > 0

    @contextlib.contextmanager
    def transient(self):
        """Route this thread's compilations to the scratch cache.

        Used by callers predicting over short-lived texts (the
        informativeness scorer's candidate evidences: re-encounters are
        served from string/node-set memos, but the *same* candidate text
        recurs for each question of a shared paragraph).  Thread-local,
        so concurrent service threads predicting over real paragraphs
        keep filling the main cache.
        """
        self._transient.depth = getattr(self._transient, "depth", 0) + 1
        try:
            yield
        finally:
            self._transient.depth -= 1

    def compile(self, context: str) -> CompiledContext:
        """The (possibly cached) compiled artifact for ``context``.

        Transient compilations check the scratch cache, then *peek* the
        main cache (a candidate evidence equal to a known paragraph
        reuses its artifact) without touching the main cache's hit/miss
        counters — so the ``compiled_contexts`` stats in profiles and
        ``/stats`` keep measuring genuine paragraph traffic, not the
        firehose of one-shot candidate probes.
        """
        if self.in_transient:
            compiled = self.scratch.get(context, MISSING)
            if compiled is not MISSING:
                return compiled
            compiled = self.cache.peek(context, MISSING)
            if compiled is not MISSING:
                return compiled
            compiled = CompiledContext(context)
            self.scratch.put(context, compiled)
            compiled.bind_accounting(self.scratch, context)
            return compiled
        compiled = self.cache.get(context, MISSING)
        if compiled is MISSING:
            compiled = CompiledContext(context)
            self.cache.put(context, compiled)
            compiled.bind_accounting(self.cache, context)
        return compiled

    # -------------------------------------------------------- snapshot plane
    def export_states(self) -> dict[str, dict]:
        """Exported states of every cached paragraph artifact, by text."""
        states: dict[str, dict] = {}
        for text, compiled in self.cache.items():
            try:
                states[text] = compiled.export_state()
            except Exception:
                continue
        return states

    def attach_snapshot(self, lookup) -> None:
        """Install a read-through loader hydrating from snapshot states.

        ``lookup(text)`` returns an :meth:`CompiledContext.export_state`
        dict or ``MISSING``.  Hydrated artifacts enter the main cache
        with accounting bound, exactly like locally-compiled ones;
        hydration traffic shows up as the cache's ``loader_hits`` /
        ``loader_misses``.
        """

        def loader(text):
            state = lookup(text)
            if state is MISSING:
                return MISSING
            compiled = CompiledContext.import_state(state)
            compiled.bind_accounting(self.cache, text)
            return compiled

        self.cache.loader = loader

    def snapshot(self):
        """Hit/miss/size/bytes counters of the main (paragraph) LRU."""
        return self.cache.snapshot()
