"""Simulated named baselines calibrated to the paper's published numbers.

The paper evaluates nine fine-tuned QA models per dataset (Tables VI/VII).
Offline we cannot run BERT or DeBERTa, but none of the experiments needs
their *architectures* — they need answer predictors of different skill
levels whose accuracy responds to context difficulty.  A
:class:`SimulatedBaseline` provides exactly that:

* it predicts with a real heuristic reader (:class:`SpanScoringQA`), and
* a calibrated *skill* parameter controls how often it resists the
  distractor spans present in the context: ``p(correct | example) =
  skill / (skill + difficulty)`` where difficulty counts competing
  same-type candidate spans.

Because difficulty drops when GCED replaces the full context with a
distilled evidence, the "+GCED" improvement in the reproduced Tables VI
and VII arises mechanistically, not by construction; only the *baseline*
row is calibrated to the paper.  Errors are split between near-miss
boundary errors (partial F1 credit — keeps F1 above EM, as in the paper)
and full distractor errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qa.answer_types import candidate_spans, classify_question
from repro.qa.base import AnswerPrediction, QAModel, SpanScoringQA
from repro.text.normalize import normalize_answer
from repro.text.tokenizer import tokenize
from repro.utils.rng import derive_seed, rng_from

__all__ = [
    "BaselineSpec",
    "SimulatedBaseline",
    "SQUAD_BASELINES",
    "TRIVIAQA_BASELINES",
    "build_baseline",
]


@dataclass(frozen=True)
class BaselineSpec:
    """A named paper baseline with its published EM/F1 per dataset.

    ``targets`` maps dataset keys ("squad11", "squad20", "triviaqa-web",
    "triviaqa-wiki") to (EM, F1) percentages from Tables VI and VII.
    """

    name: str
    targets: dict[str, tuple[float, float]]

    def target_em(self, dataset: str) -> float:
        if dataset not in self.targets:
            raise KeyError(f"{self.name} has no published numbers on {dataset}")
        return self.targets[dataset][0]

    def target_f1(self, dataset: str) -> float:
        return self.targets[dataset][1]


# Table VI baselines (SQuAD-1.1, SQuAD-2.0). Values are (EM, F1).
SQUAD_BASELINES: tuple[BaselineSpec, ...] = (
    BaselineSpec("BERT-large", {"squad11": (84.1, 90.9), "squad20": (79.0, 81.8)}),
    BaselineSpec("RoBERTa-500K", {"squad11": (88.9, 94.6), "squad20": (86.5, 89.4)}),
    BaselineSpec("SpanBERT", {"squad11": (88.8, 94.6), "squad20": (85.7, 88.7)}),
    BaselineSpec("ALBERT", {"squad11": (89.3, 94.8), "squad20": (87.4, 90.2)}),
    BaselineSpec("XLNet-large", {"squad11": (89.7, 95.1), "squad20": (87.9, 90.6)}),
    BaselineSpec("ELECTRA-1.75M", {"squad11": (89.7, 94.9), "squad20": (88.0, 90.6)}),
    BaselineSpec("LUKE", {"squad11": (89.8, 95.0), "squad20": (87.9, 90.5)}),
    BaselineSpec("T5", {"squad11": (90.1, 95.6), "squad20": (88.2, 90.8)}),
    BaselineSpec("DeBERTa-large", {"squad11": (90.1, 95.5), "squad20": (88.0, 90.7)}),
)

# Table VII baselines (TriviaQA-Web, TriviaQA-Wiki).
TRIVIAQA_BASELINES: tuple[BaselineSpec, ...] = (
    BaselineSpec("BERT+BM25", {"triviaqa-web": (47.2, 56.1), "triviaqa-wiki": (46.4, 54.7)}),
    BaselineSpec("GraphRetriever", {"triviaqa-web": (55.8, 64.3), "triviaqa-wiki": (54.9, 63.4)}),
    BaselineSpec("RoBERTa-base", {"triviaqa-web": (69.7, 76.8), "triviaqa-wiki": (67.6, 74.3)}),
    BaselineSpec("Longformer-base", {"triviaqa-web": (74.6, 78.6), "triviaqa-wiki": (72.0, 75.2)}),
    BaselineSpec("Bigbird-itc", {"triviaqa-web": (77.6, 81.8), "triviaqa-wiki": (75.7, 79.5)}),
    BaselineSpec("ELECTRA-base", {"triviaqa-web": (68.9, 75.6), "triviaqa-wiki": (65.4, 73.8)}),
    BaselineSpec("RAG-Sequence", {"triviaqa-web": (58.9, 62.7), "triviaqa-wiki": (55.8, 61.5)}),
    BaselineSpec("PA+PDR", {"triviaqa-web": (62.3, 69.0), "triviaqa-wiki": (60.1, 66.7)}),
    BaselineSpec("Hard-EM", {"triviaqa-web": (68.5, 75.8), "triviaqa-wiki": (66.9, 75.3)}),
)

_ALL_SPECS = {spec.name: spec for spec in SQUAD_BASELINES + TRIVIAQA_BASELINES}


def _find_gold_span(context: str, answer: str) -> tuple[int, int] | None:
    """Character span of ``answer`` in ``context`` (case-insensitive)."""
    if not answer:
        return None
    pos = context.find(answer)
    if pos < 0:
        pos = context.lower().find(answer.lower())
    if pos < 0:
        return None
    return pos, pos + len(answer)


class SimulatedBaseline(QAModel):
    """A skill-calibrated answer predictor.

    Args:
        spec: the named baseline this simulates.
        reader: real heuristic reader used for distractor ranking and for
            plain :meth:`predict` calls (no gold available).
        skill: calibrated skill parameter (see module docstring); set by
            :meth:`calibrate` or :func:`build_baseline`.
        seed: seed for the per-example error draws.
        boundary_error_rate: fraction of errors that are near-miss boundary
            errors rather than full distractor errors.
    """

    def __init__(
        self,
        spec: BaselineSpec,
        reader: SpanScoringQA,
        skill: float = 5.0,
        seed: int = 0,
        boundary_error_rate: float = 0.55,
        difficulty_floor: float = 0.45,
    ) -> None:
        self.spec = spec
        self.reader = reader
        self.skill = skill
        self.seed = seed
        self.boundary_error_rate = boundary_error_rate
        # Irreducible per-example hardness: even a distractor-free context
        # leaves some error mass (paraphrase gaps, boundary ambiguity), so
        # +GCED rows improve without saturating at 100.
        self.difficulty_floor = difficulty_floor
        self.name = spec.name

    # ------------------------------------------------------------ plumbing
    def predict(self, question: str, context: str) -> AnswerPrediction:
        """Gold-free prediction: delegate to the underlying reader."""
        return self.reader.predict(question, context)

    def difficulty(self, question: str, context: str, gold: str) -> float:
        """Distractor pressure of ``context`` for this question.

        Counts same-type candidate spans that do not overlap the gold
        answer; long noisy contexts (TriviaQA-style) therefore score much
        higher than distilled evidences.
        """
        tokens = tokenize(context)
        answer_type = classify_question(question)
        spans = candidate_spans(tokens, answer_type)
        gold_span = _find_gold_span(context, gold)
        norm_gold = normalize_answer(gold)
        competing = 0
        seen: set[str] = set()
        for start, end in spans:
            s_char, e_char = tokens[start].start, tokens[end].end
            if gold_span is not None and not (
                e_char <= gold_span[0] or s_char >= gold_span[1]
            ):
                continue  # overlaps gold: not a distractor
            surface = normalize_answer(context[s_char:e_char])
            if not surface or surface == norm_gold or surface in seen:
                continue
            seen.add(surface)
            competing += 1
        return float(competing) + self.difficulty_floor

    def p_correct(self, question: str, context: str, gold: str) -> float:
        """Probability of answering this example correctly."""
        d = self.difficulty(question, context, gold)
        return self.skill / (self.skill + d)

    # ------------------------------------------------------------- predict
    def predict_example(
        self,
        question: str,
        context: str,
        gold: str,
        example_id: str,
    ) -> AnswerPrediction:
        """Simulate this baseline's answer for a labelled example.

        The random draw is a deterministic function of ``(seed, name,
        example_id)`` only — *common random numbers* across conditions.  A
        re-ask on an easier context (e.g. a distilled evidence) compares
        the same uniform draw against a higher ``p_correct``, so per-example
        outcomes are monotone in context difficulty and experiment deltas
        (Tables VI/VII, Fig. 7) are estimated with minimal variance.
        """
        rng = rng_from(self.seed, f"{self.name}:{example_id}")
        gold_span = _find_gold_span(context, gold)
        if not gold:
            # Unanswerable question (SQuAD 2.0 style): correct behaviour is
            # abstention.
            if rng.random() < self.skill / (self.skill + 1.0):
                return AnswerPrediction.empty()
            return self.reader.predict(question, context)
        if gold_span is None:
            # The gold answer is not in this context at all (e.g. evidence
            # distilled from a wrong predicted answer) — the model cannot
            # recover it; it falls back to its reader.
            return self.reader.predict(question, context)
        if rng.random() < self.p_correct(question, context, gold):
            return AnswerPrediction(
                text=context[gold_span[0] : gold_span[1]],
                start=gold_span[0],
                end=gold_span[1],
                score=1.0,
            )
        return self._error_prediction(rng, question, context, gold_span)

    def _error_prediction(
        self,
        rng,
        question: str,
        context: str,
        gold_span: tuple[int, int],
    ) -> AnswerPrediction:
        """Produce a realistic wrong answer (boundary near-miss or distractor)."""
        tokens = tokenize(context)
        if rng.random() < self.boundary_error_rate:
            # Near-miss: extend or truncate the gold span by one token.
            inside = [
                t for t in tokens if t.start >= gold_span[0] and t.end <= gold_span[1]
            ]
            before = [t for t in tokens if t.end <= gold_span[0]]
            after = [t for t in tokens if t.start >= gold_span[1]]
            choices: list[tuple[int, int]] = []
            if before and before[-1].is_word:
                choices.append((before[-1].start, gold_span[1]))
            if after and after[0].is_word:
                choices.append((gold_span[0], after[0].end))
            if len(inside) > 1:
                choices.append((inside[0].start, inside[-2].end))
                choices.append((inside[1].start, inside[-1].end))
            gold_norm = normalize_answer(context[gold_span[0] : gold_span[1]])
            choices = [
                (s, e)
                for s, e in choices
                if normalize_answer(context[s:e]) != gold_norm
            ]
            if choices:
                start, end = choices[rng.integers(0, len(choices))]
                return AnswerPrediction(context[start:end], start, end, 0.5)
        # Full distractor: best-ranked candidate that is genuinely wrong —
        # neither overlapping the gold span nor a duplicate mention of the
        # gold string elsewhere in the context.
        gold_norm = normalize_answer(context[gold_span[0] : gold_span[1]])
        for pred in self.reader.predict_top_k(question, context, k=8):
            outside = pred.end <= gold_span[0] or pred.start >= gold_span[1]
            if outside and normalize_answer(pred.text) != gold_norm:
                return pred
        # Degenerate context (everything is the answer): truncate the gold.
        inside = [
            t for t in tokens if t.start >= gold_span[0] and t.end <= gold_span[1]
        ]
        if len(inside) > 1:
            return AnswerPrediction(
                context[inside[0].start : inside[-2].end],
                inside[0].start,
                inside[-2].end,
                0.3,
            )
        return self.reader.predict(question, context)

    # ----------------------------------------------------------- calibrate
    def calibrate(
        self,
        examples: list[tuple[str, str, str]],
        target_em: float,
        tolerance: float = 0.25,
    ) -> float:
        """Set ``skill`` so mean ``p_correct`` over examples ≈ ``target_em``%.

        ``examples`` are (question, context, gold) triples.  Bisection on
        the monotone mapping skill → mean accuracy.
        """
        target = target_em / 100.0
        difficulties = [
            self.difficulty(q, c, g) for q, c, g in examples if g
        ]
        if not difficulties:
            raise ValueError("calibration needs at least one answerable example")

        def mean_acc(skill: float) -> float:
            return sum(skill / (skill + d) for d in difficulties) / len(difficulties)

        lo, hi = 1e-3, 1e5
        if mean_acc(hi) < target:  # even max skill can't reach: saturate
            self.skill = hi
            return hi
        for _ in range(80):
            mid = (lo * hi) ** 0.5  # geometric bisection for wide range
            if mean_acc(mid) < target:
                lo = mid
            else:
                hi = mid
        self.skill = hi
        achieved = 100.0 * mean_acc(self.skill)
        if abs(achieved - target_em) > max(tolerance, 2.0):
            # Not an error: coarse difficulty distributions may limit fit;
            # record the gap for the experiment report.
            pass
        return self.skill


def build_baseline(
    name: str,
    dataset: str,
    reader: SpanScoringQA,
    calibration_examples: list[tuple[str, str, str]],
    seed: int = 0,
) -> SimulatedBaseline:
    """Construct and calibrate a named baseline for ``dataset``.

    Args:
        name: a key of :data:`SQUAD_BASELINES` / :data:`TRIVIAQA_BASELINES`.
        dataset: dataset key the spec publishes numbers for.
        reader: fitted heuristic reader shared by the simulation.
        calibration_examples: (question, context, gold) triples from the
            dataset's training split.
        seed: error-draw seed.
    """
    spec = _ALL_SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown baseline {name!r}; known: {sorted(_ALL_SPECS)}")
    model = SimulatedBaseline(
        spec, reader, seed=derive_seed(seed, f"baseline:{name}:{dataset}")
    )
    model.calibrate(calibration_examples, spec.target_em(dataset))
    return model
