"""QA model interface and the shared span-scoring harness.

Mirrors Step 1-2 of Sec. II-B1: the model receives a question and a text
(full context, single sentences during ASE, or a candidate evidence during
hybrid scoring) and returns the best answer span with a confidence score.
"""

from __future__ import annotations

import abc
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Sequence

from repro.parsing.pos import PosTagger, VERB_LEXICON
from repro.qa.answer_types import AnswerType, candidate_spans, classify_question
from repro.qa.compiled import CompiledContext, ContextCompiler
from repro.text.stem import light_stem
from repro.text.tokenizer import Token, tokenize
from repro.lexicon.stopwords import is_insignificant
from repro.utils.cache import MISSING, memoize_method

__all__ = ["AnswerPrediction", "QAModel", "QuestionProfile", "SpanScoringQA"]

# Process-wide identity sequence for compiled-prep cache keys, and the
# lock that makes lazily installed per-instance state single-assignment
# under thread-pool execution.
_PREP_KEYS = itertools.count()
_INSTALL_LOCK = threading.Lock()


@dataclass(frozen=True)
class AnswerPrediction:
    """A predicted answer span.

    Attributes:
        text: surface answer string (as it appears in the context).
        start: character offset of the span start in the context.
        end: character offset one past the span end.
        score: model confidence (higher is better; scale is model-specific).
    """

    text: str
    start: int
    end: int
    score: float

    @classmethod
    def empty(cls) -> "AnswerPrediction":
        """The no-answer prediction (used for unanswerable questions)."""
        return cls(text="", start=0, end=0, score=float("-inf"))

    @property
    def is_empty(self) -> bool:
        return not self.text


class QAModel(abc.ABC):
    """Interface every answer predictor implements."""

    name: str = "qa-model"

    @abc.abstractmethod
    def predict(self, question: str, context: str) -> AnswerPrediction:
        """Predict the best answer span for ``question`` in ``context``."""

    def predict_batch(
        self, question: str, contexts: Sequence[str]
    ) -> list[AnswerPrediction]:
        """Predictions for one question over many candidate texts.

        The contract is *exact* equivalence with calling :meth:`predict`
        once per context; the batch entry point exists so callers (the
        clip search, ASE sentence ranking) can issue one call per
        iteration and models can amortize question-side work across the
        batch.  The default simply loops.
        """
        return [self.predict(question, context) for context in contexts]

    def predict_top_k(
        self, question: str, context: str, k: int = 5
    ) -> list[AnswerPrediction]:
        """Best ``k`` non-overlapping predictions; default returns just one."""
        return [self.predict(question, context)]


@dataclass(frozen=True)
class QuestionProfile:
    """Question-side artifacts shared by every span scored for a question.

    Everything here is a pure function of the question string, so one
    profile is computed per question (LRU-cached per model) instead of
    once per candidate span — the clip search scores hundreds of spans
    per question and used to rebuild these maps for each one.
    """

    terms: tuple[str, ...]
    exact: dict[str, str]
    stems: dict[str, str]
    verbs: frozenset[str]
    answer_type: AnswerType


class SpanScoringQA(QAModel):
    """Shared machinery: enumerate typed candidate spans, score, argmax.

    Subclasses implement :meth:`score_span`.  Scores combine with a small
    length penalty so that, all else equal, tighter spans win — the same
    inductive bias extractive PLM heads acquire from SQuAD training.

    Context-side work (tokenization, POS tags, sentence bounds, typed
    candidate-span sets, the :meth:`span_prep` tables) routes through a
    per-paragraph :class:`~repro.qa.compiled.CompiledContext` artifact
    cached in :attr:`context_compiler`, so repeated predictions against
    the same paragraph — several questions per SQuAD context, ASE
    re-asks, open-context traffic — derive them once.  Set
    ``model.context_compiler = None`` to force the inline derivation
    (used by the equivalence tests and the prepared-vs-compiled
    micro-benchmark); outputs are bit-identical either way.
    """

    length_penalty: float = 0.05

    # ------------------------------------------------- compiled-context hook
    @property
    def prep_key(self) -> int:
        """Stable per-instance identity for compiled-prep cache keys."""
        key = self.__dict__.get("_prep_key")
        if key is None:
            with _INSTALL_LOCK:
                key = self.__dict__.get("_prep_key")
                if key is None:
                    key = self.__dict__["_prep_key"] = next(_PREP_KEYS)
        return key

    @property
    def context_compiler(self) -> ContextCompiler | None:
        """The model's compiled-context cache (lazily created).

        Assign ``None`` to disable compiled-context reuse, or share one
        :class:`ContextCompiler` across models explicitly.
        """
        compiler = self.__dict__.get("_context_compiler", MISSING)
        if compiler is MISSING:
            with _INSTALL_LOCK:
                compiler = self.__dict__.get("_context_compiler", MISSING)
                if compiler is MISSING:
                    compiler = ContextCompiler()
                    self.__dict__["_context_compiler"] = compiler
        return compiler

    @context_compiler.setter
    def context_compiler(self, value: ContextCompiler | None) -> None:
        self.__dict__["_context_compiler"] = value

    def compiled_context(self, context: str) -> CompiledContext | None:
        """Compile (or fetch) ``context``; None when the compiler is off.

        The compiler routes short-lived texts (predictions made under
        :meth:`ContextCompiler.transient`, e.g. the informativeness
        scorer's candidate evidences) to its scratch cache so they never
        evict paragraph artifacts.
        """
        compiler = self.context_compiler
        if compiler is None:
            return None
        return compiler.compile(context)

    def question_terms(self, question: str) -> list[str]:
        """Significant (non-stopword) lowercased question terms."""
        return [
            t.lower for t in tokenize(question) if t.is_word and not is_insignificant(t.text)
        ]

    # Matched question verbs anchor the answer more strongly than matched
    # entities ("Beyonce *performed* in X" — X is near the verb, while many
    # irrelevant spans sit near the entity mention).
    verb_term_boost: float = 1.6

    @staticmethod
    def term_index(
        question_terms: list[str],
    ) -> tuple[dict[str, str], dict[str, str], frozenset[str]]:
        """Build (exact map, stem map, verb-term set) for fast matching.

        Both maps send a surface key to the canonical question term, so the
        caller can track *distinct* matched terms for coverage bonuses.
        """
        exact = {t: t for t in question_terms}
        stems = {light_stem(t): t for t in question_terms}
        verbs = frozenset(
            t for t in question_terms
            if t in VERB_LEXICON or light_stem(t) in VERB_LEXICON
        )
        return exact, stems, verbs

    @staticmethod
    def match_term(
        token_lower: str,
        exact: dict[str, str],
        stems: dict[str, str],
    ) -> str | None:
        """The question term matched by a context token, or None."""
        if token_lower in exact:
            return exact[token_lower]
        return stems.get(light_stem(token_lower))

    @memoize_method(maxsize=512)
    def _question_profile(self, question: str) -> QuestionProfile:
        """The cached :class:`QuestionProfile` for ``question``."""
        terms = tuple(self.question_terms(question))
        exact, stems, verbs = self.term_index(list(terms))
        return QuestionProfile(
            terms=terms,
            exact=exact,
            stems=stems,
            verbs=verbs,
            answer_type=classify_question(question),
        )

    # ------------------------------------------------- prepared span scoring
    def span_prep(
        self,
        profile: QuestionProfile,
        tokens: list[Token],
        compiled: CompiledContext | None = None,
    ) -> Any:
        """Per-(question, context) precomputation for span scoring.

        Subclasses return an opaque object (match tables, embedding
        matrices, ...) that :meth:`score_span_prepared` consumes; spans of
        the same context then share one O(n) pass instead of each paying
        it.  Returning ``None`` (the default) routes every span through
        the generic :meth:`score_span`, so subclasses that only implement
        ``score_span`` keep their exact behaviour.  When ``compiled`` is
        given, question-independent pieces may be memoized on it via
        :meth:`CompiledContext.derive` so different questions against the
        same paragraph share them.
        """
        return None

    def score_span_prepared(
        self,
        prep: Any,
        profile: QuestionProfile,
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        """Score a span using ``prep``; must equal :meth:`score_span` exactly."""
        raise NotImplementedError(
            "models returning a non-None span_prep must implement "
            "score_span_prepared"
        )

    def _span_score(
        self,
        prep: Any,
        terms: list[str],
        profile: QuestionProfile,
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None,
    ) -> float:
        """Dispatch to the prepared path when available, else the generic one."""
        if prep is not None:
            return self.score_span_prepared(prep, profile, tokens, start, end, bounds)
        return self.score_span(terms, tokens, start, end, bounds=bounds)

    @abc.abstractmethod
    def score_span(
        self,
        question_terms: list[str],
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        """Score the candidate span ``tokens[start..end]`` (inclusive).

        ``bounds`` restricts question-term matching to the token range of
        the span's own sentence — question words in a *neighbouring*
        sentence are not evidence for this span.
        """

    @staticmethod
    def sentence_bounds(tokens: list[Token]) -> list[tuple[int, int]]:
        """Per-token (start, end-exclusive) bounds of the containing sentence."""
        bounds: list[tuple[int, int]] = [None] * len(tokens)  # type: ignore[list-item]
        start = 0
        for i, tok in enumerate(tokens):
            if tok.text in (".", "!", "?"):
                for k in range(start, i + 1):
                    bounds[k] = (start, i + 1)
                start = i + 1
        for k in range(start, len(tokens)):
            bounds[k] = (start, len(tokens))
        return bounds

    # Prior for typed (capitalized / numeric) candidates over generic
    # phrase spans, and bonus for spans in subject position before a verb.
    typed_prior: float = 0.5
    subject_bonus: float = 1.2
    _tagger = PosTagger()
    _NOUNISH_TAGS = frozenset({"NN", "NNS", "NNP", "CD", "VBG"})
    _BAD_START_TAGS = frozenset({"CC", "IN", "TO", "PUNCT", "POS"})

    def _is_verb(self, token: Token) -> bool:
        lower = token.lower
        if lower in VERB_LEXICON:
            return True
        return lower.endswith("ed") and len(lower) > 4

    def _ranked_spans(
        self, question: str, context: str
    ) -> tuple[list[Token], list[tuple[float, int, int]]]:
        compiled = self.compiled_context(context)
        tokens = compiled.tokens if compiled is not None else tokenize(context)
        if not tokens:
            return tokens, []
        profile = self._question_profile(question)
        answer_type = profile.answer_type
        if compiled is not None:
            typed, spans = compiled.span_sets(answer_type)
            prep = compiled.prep(self, profile)
            sent_bounds = compiled.sentence_bounds(self)
            tags = compiled.pos_tags(self._tagger)
        else:
            typed = set(candidate_spans(tokens, answer_type))
            spans = set(typed)
            if answer_type is AnswerType.ENTITY or not spans:
                # "what/which" answers are frequently common-noun phrases
                # that the capitalized-run extractor cannot produce.
                spans |= set(candidate_spans(tokens, AnswerType.PHRASE))
            prep = self.span_prep(profile, tokens)
            sent_bounds = self.sentence_bounds(tokens)
            tags = self._tagger.tag([t.text for t in tokens])
        terms = list(profile.terms)
        entity_like = answer_type in (
            AnswerType.PERSON,
            AnswerType.PLACE,
            AnswerType.ENTITY,
        )
        scored = []
        for start, end in spans:
            lo = sent_bounds[start][0]
            hi = sent_bounds[min(end, len(tokens) - 1)][1]
            raw = self._span_score(prep, terms, profile, tokens, start, end, (lo, hi))
            raw -= self.length_penalty * (end - start)
            if (start, end) in typed:
                raw += self.typed_prior
                if (
                    entity_like
                    and end + 1 < len(tokens)
                    and self._is_verb(tokens[end + 1])
                ):
                    # Subject preference: "which team ...?" answers sit
                    # before the predicate ("Denver Broncos defeated ...").
                    raw += self.subject_bonus
            elif entity_like:
                # Generic phrase spans are a fallback for entity questions.
                raw -= 0.4
            if (start, end) not in typed:
                # Completeness prior: answers are (close to) constituents —
                # a span ending mid-phrase ("various", "singing and") or
                # starting on a conjunction is rarely a full answer.
                if tags[end] not in self._NOUNISH_TAGS:
                    raw -= 0.6
                if tags[start] in self._BAD_START_TAGS:
                    raw -= 0.3
                # Ending mid-noun-phrase ("various singing" of "various
                # singing and dancing competitions") is also incomplete.
                nxt = end + 1
                if nxt < len(tokens) and tags[nxt] == "CC" and nxt + 1 < len(
                    tokens
                ) and tags[nxt + 1] in self._NOUNISH_TAGS:
                    raw -= 0.5
                elif nxt < len(tokens) and tags[nxt] in self._NOUNISH_TAGS:
                    raw -= 0.5
            scored.append((raw, start, end))
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        return tokens, scored

    def predict(self, question: str, context: str) -> AnswerPrediction:
        # The final prediction is a pure function of (trained model,
        # question, context), so the compiled context memoizes it whole:
        # ASE's subset loop and hydrated snapshot workers repeat the same
        # (question, text) pairs, and a memo hit skips span scoring.
        compiled = self.compiled_context(context)
        if compiled is not None:
            return compiled.prediction(
                self.name, question, lambda: self._predict_direct(question, context)
            )
        return self._predict_direct(question, context)

    def _predict_direct(self, question: str, context: str) -> AnswerPrediction:
        tokens, scored = self._ranked_spans(question, context)
        if not scored:
            return AnswerPrediction.empty()
        score, start, end = scored[0]
        return AnswerPrediction(
            text=context[tokens[start].start : tokens[end].end],
            start=tokens[start].start,
            end=tokens[end].end,
            score=score,
        )

    # predict_batch: the inherited serial loop is already amortized here —
    # every predict shares the memoized QuestionProfile and pays span
    # scoring through a per-context span_prep table, so question-side work
    # is hoisted whether calls arrive one at a time or as a batch.

    def predict_top_k(
        self, question: str, context: str, k: int = 5
    ) -> list[AnswerPrediction]:
        tokens, scored = self._ranked_spans(question, context)
        results: list[AnswerPrediction] = []
        taken: list[tuple[int, int]] = []
        for score, start, end in scored:
            if any(not (end < s or start > e) for s, e in taken):
                continue
            results.append(
                AnswerPrediction(
                    text=context[tokens[start].start : tokens[end].end],
                    start=tokens[start].start,
                    end=tokens[end].end,
                    score=score,
                )
            )
            taken.append((start, end))
            if len(results) == k:
                break
        return results
