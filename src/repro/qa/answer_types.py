"""Question typing and typed candidate-span extraction.

The heuristic QA models and the simulated-baseline error model both need
to know *what kind* of span answers a question (a person, a place, a
number, ...) and which context spans are plausible candidates of that
type.  This mirrors the answer-type matching a trained extractive PLM
performs implicitly.
"""

from __future__ import annotations

import enum
import re

from repro.lexicon.stopwords import is_insignificant
from repro.text.tokenizer import Token, tokenize

__all__ = ["AnswerType", "classify_question", "candidate_spans"]

_NUMBER_RE = re.compile(r"^\d+(?:[.,]\d+)*%?$")

_PLACE_CUES = {
    "city", "country", "state", "place", "region", "river", "mountain",
    "continent", "town", "capital", "island", "province", "location",
    "where",
}
_PERSON_CUES = {
    "who", "whom", "whose", "person", "king", "queen", "president",
    "singer", "author", "scientist", "leader", "founder", "player",
    "mother", "father", "wife", "husband",
}
_TIME_CUES = {"when", "year", "date", "century", "decade", "month", "day"}
_COUNT_CUES = {
    "many", "much", "number", "percentage", "percent", "population",
    "long", "tall", "old", "far", "often",
}


class AnswerType(enum.Enum):
    """Coarse answer types driving span candidate generation."""

    PERSON = "person"
    PLACE = "place"
    NUMBER = "number"
    ENTITY = "entity"  # any proper-noun span
    PHRASE = "phrase"  # unrestricted


def classify_question(question: str) -> AnswerType:
    """Infer the expected answer type from the question's wording.

    >>> classify_question("Who led the Norman conquest?")
    <AnswerType.PERSON: 'person'>
    >>> classify_question("When was the battle fought?")
    <AnswerType.NUMBER: 'number'>
    """
    words = {t.lower for t in tokenize(question) if t.is_word}
    if words & _TIME_CUES or words & _COUNT_CUES:
        return AnswerType.NUMBER
    if words & _PERSON_CUES:
        return AnswerType.PERSON
    if words & _PLACE_CUES:
        return AnswerType.PLACE
    if "what" in words or "which" in words:
        return AnswerType.ENTITY
    return AnswerType.PHRASE


def _is_capitalized_word(token: Token) -> bool:
    return token.is_word and token.text[:1].isupper()


def _is_number(token: Token) -> bool:
    return bool(_NUMBER_RE.match(token.text))


def candidate_spans(
    tokens: list[Token],
    answer_type: AnswerType,
    max_len: int = 6,
) -> list[tuple[int, int]]:
    """Token-index spans ``(start, end_inclusive)`` plausible for the type.

    * NUMBER: maximal runs of numeric tokens (plus trailing unit word).
    * PERSON / PLACE / ENTITY: maximal capitalized runs (with internal
      "of"/"the" bridges, e.g. "Battle of Hastings").
    * PHRASE: all short spans starting/ending on a content word.
    """
    spans: list[tuple[int, int]] = []
    n = len(tokens)
    if answer_type is AnswerType.NUMBER:
        i = 0
        while i < n:
            if _is_number(tokens[i]):
                j = i
                while j + 1 < n and _is_number(tokens[j + 1]):
                    j += 1
                spans.append((i, j))
                # include a trailing unit noun ("50 points")
                if j + 1 < n and tokens[j + 1].is_word:
                    spans.append((i, j + 1))
                i = j + 1
            else:
                i += 1
        return spans
    if answer_type in (AnswerType.PERSON, AnswerType.PLACE, AnswerType.ENTITY):
        pronouns = {"she", "he", "it", "they", "her", "him", "them", "i", "we", "you"}
        i = 0
        while i < n:
            if _is_capitalized_word(tokens[i]):
                j = i
                while j + 1 < n:
                    nxt = tokens[j + 1]
                    if _is_capitalized_word(nxt):
                        j += 1
                        continue
                    # bridge "of"/"the" between capitalized words
                    if (
                        nxt.lower in ("of", "the")
                        and j + 2 < n
                        and _is_capitalized_word(tokens[j + 2])
                    ):
                        j += 2
                        continue
                    break
                single_pronoun = i == j and tokens[i].lower in pronouns
                if j - i + 1 <= max_len + 2 and not single_pronoun:
                    spans.append((i, j))
                i = j + 1
            else:
                i += 1
        return [(a, b) for a, b in spans if a <= b]
    # PHRASE: any span up to max_len anchored on *significant* content
    # words (a span may contain function words but not start/end on one).
    for i in range(n):
        if not tokens[i].is_word or is_insignificant(tokens[i].text):
            continue
        for j in range(i, min(n, i + max_len)):
            if tokens[j].is_word and not is_insignificant(tokens[j].text):
                spans.append((i, j))
    return spans
