"""Standard QA evaluation loop: model × dataset → EM/F1 with intervals.

The SQuAD-style evaluation everyone writes by hand, provided once: handles
multiple gold answers, unanswerable questions (SQuAD-2.0 abstention), and
reports confidence intervals alongside the means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.datasets.types import QAExample
from repro.metrics.aggregate import MetricSummary, summarize
from repro.metrics.overlap import best_em, best_f1
from repro.qa.base import QAModel
from repro.qa.registry import SimulatedBaseline

__all__ = ["EvaluationResult", "evaluate_model", "evaluate_with_contexts"]


@dataclass(frozen=True)
class EvaluationResult:
    """EM/F1 summaries plus the per-example scores behind them."""

    em: MetricSummary
    f1: MetricSummary
    per_example_em: tuple[float, ...]
    per_example_f1: tuple[float, ...]

    def row(self) -> dict:
        """A table row: percentages, as the paper reports them."""
        return {
            "EM": 100.0 * self.em.mean,
            "F1": 100.0 * self.f1.mean,
            "EM_ci": 100.0 * (self.em.ci_high - self.em.ci_low) / 2.0,
            "F1_ci": 100.0 * (self.f1.ci_high - self.f1.ci_low) / 2.0,
            "n": self.em.n,
        }


def evaluate_with_contexts(
    model: QAModel,
    examples: Sequence[QAExample],
    context_of: Callable[[QAExample], str],
) -> EvaluationResult:
    """Evaluate ``model`` with a custom context per example.

    ``context_of`` lets callers swap the raw context for a distilled
    evidence (the Table VI/VII protocol).  Simulated baselines are driven
    through their calibrated ``predict_example`` path; plain readers
    through ``predict``.
    """
    if not examples:
        raise ValueError("cannot evaluate on an empty example list")
    ems: list[float] = []
    f1s: list[float] = []
    for example in examples:
        context = context_of(example)
        if isinstance(model, SimulatedBaseline):
            prediction = model.predict_example(
                example.question,
                context,
                example.primary_answer,
                example.example_id,
            )
        else:
            prediction = model.predict(example.question, context)
        golds = list(example.answers)
        ems.append(best_em(prediction.text, golds))
        f1s.append(best_f1(prediction.text, golds))
    return EvaluationResult(
        em=summarize("EM", ems),
        f1=summarize("F1", f1s),
        per_example_em=tuple(ems),
        per_example_f1=tuple(f1s),
    )


def evaluate_model(
    model: QAModel, examples: Sequence[QAExample]
) -> EvaluationResult:
    """Evaluate ``model`` on the examples' own contexts."""
    return evaluate_with_contexts(model, examples, lambda e: e.context)
