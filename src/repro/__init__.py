"""repro — Grow-and-Clip Evidence Distillation (GCED).

Reproduction of Chen, Xiao & Liu, "Grow-and-Clip: Informative-yet-Concise
Evidence Distillation for Answer Explanation" (ICDE 2022).

Quickstart::

    from repro import GCED, GCEDConfig, QATrainer

    trainer = QATrainer(seed=0)
    artifacts = trainer.train(corpus_contexts)
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    result = gced.distill(question, answer, context)
    print(result.evidence)
    print(result.explain())
"""

from repro.core import (
    GCED,
    GCEDConfig,
    DistillationResult,
    BatchDistiller,
    BatchStats,
    OpenContextDistiller,
    open_context_plan,
    stage_plan,
)
from repro.engine import (
    ParallelExecutor,
    PipelineProfile,
    SerialExecutor,
    StageRegistry,
    default_registry,
)
from repro.metrics import (
    HybridScorer,
    HybridWeights,
    EvidenceScores,
    exact_match,
    f1_score,
)
from repro.qa import (
    QAModel,
    QATrainer,
    TrainedArtifacts,
    SimulatedBaseline,
    SQUAD_BASELINES,
    TRIVIAQA_BASELINES,
    build_baseline,
)
from repro.retrieval import CorpusRetriever
from repro.service import (
    DistillService,
    MicroBatchScheduler,
    ServiceClient,
    ServiceConfig,
)

__version__ = "1.0.0"

__all__ = [
    "GCED",
    "GCEDConfig",
    "DistillationResult",
    "BatchDistiller",
    "BatchStats",
    "CorpusRetriever",
    "OpenContextDistiller",
    "open_context_plan",
    "stage_plan",
    "ParallelExecutor",
    "PipelineProfile",
    "SerialExecutor",
    "StageRegistry",
    "default_registry",
    "HybridScorer",
    "HybridWeights",
    "EvidenceScores",
    "exact_match",
    "f1_score",
    "QAModel",
    "QATrainer",
    "TrainedArtifacts",
    "SimulatedBaseline",
    "SQUAD_BASELINES",
    "TRIVIAQA_BASELINES",
    "build_baseline",
    "DistillService",
    "MicroBatchScheduler",
    "ServiceClient",
    "ServiceConfig",
    "__version__",
]
