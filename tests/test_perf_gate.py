"""Unit tests for the CI perf gate's regression directions."""

from __future__ import annotations

from benchmarks.perf_gate import ABSOLUTE_CEILINGS, compare


class TestCompareDirections:
    def test_throughput_regresses_downward(self):
        failures, _report = compare(
            {"batch.serial_ex_per_sec": 60.0},
            {"batch.serial_ex_per_sec": 100.0},
            tolerance=0.30,
        )
        assert failures and "below" in failures[0]

    def test_throughput_improvement_passes(self):
        failures, _report = compare(
            {"batch.serial_ex_per_sec": 250.0},
            {"batch.serial_ex_per_sec": 100.0},
            tolerance=0.30,
        )
        assert failures == []

    def test_latency_regresses_upward(self):
        failures, _report = compare(
            {"distill.oec_ms": 10.0},
            {"distill.oec_ms": 5.0},
            tolerance=0.30,
        )
        assert failures and "above" in failures[0]

    def test_latency_improvement_passes(self):
        # A big latency *drop* is an improvement, not a regression — the
        # bug the _ms direction exists to avoid.
        failures, _report = compare(
            {"distill.oec_ms": 1.0},
            {"distill.oec_ms": 5.0},
            tolerance=0.30,
        )
        assert failures == []

    def test_within_tolerance_passes_both_ways(self):
        failures, _report = compare(
            {"distill.oec_ms": 5.5, "batch.serial_ex_per_sec": 90.0},
            {"distill.oec_ms": 5.0, "batch.serial_ex_per_sec": 100.0},
            tolerance=0.30,
        )
        assert failures == []

    def test_baseline_only_metric_reports_not_fails(self):
        failures, report = compare(
            {}, {"service.c1.req_per_sec": 50.0}, tolerance=0.30
        )
        assert failures == []
        assert any("baseline-only" in line for line in report)


class TestAbsoluteCeilings:
    def test_overhead_pct_has_a_ceiling(self):
        assert ABSOLUTE_CEILINGS["obs.overhead_pct"] == 5.0

    def test_ceiling_metrics_skip_baseline_comparison(self):
        # obs.overhead_pct floats near zero, so a ratio comparison
        # against a stale baseline would flake in both directions; it is
        # gated against its fixed ceiling instead and must never enter
        # the relative compare, even with a wildly different baseline.
        failures, report = compare(
            {"obs.overhead_pct": 4.9},
            {"obs.overhead_pct": 0.01},
            tolerance=0.30,
        )
        assert failures == []
        assert not any("obs.overhead_pct" in line for line in report)
