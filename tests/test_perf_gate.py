"""Unit tests for the CI perf gate's regression directions."""

from __future__ import annotations

from benchmarks.perf_gate import compare


class TestCompareDirections:
    def test_throughput_regresses_downward(self):
        failures, _report = compare(
            {"batch.serial_ex_per_sec": 60.0},
            {"batch.serial_ex_per_sec": 100.0},
            tolerance=0.30,
        )
        assert failures and "below" in failures[0]

    def test_throughput_improvement_passes(self):
        failures, _report = compare(
            {"batch.serial_ex_per_sec": 250.0},
            {"batch.serial_ex_per_sec": 100.0},
            tolerance=0.30,
        )
        assert failures == []

    def test_latency_regresses_upward(self):
        failures, _report = compare(
            {"distill.oec_ms": 10.0},
            {"distill.oec_ms": 5.0},
            tolerance=0.30,
        )
        assert failures and "above" in failures[0]

    def test_latency_improvement_passes(self):
        # A big latency *drop* is an improvement, not a regression — the
        # bug the _ms direction exists to avoid.
        failures, _report = compare(
            {"distill.oec_ms": 1.0},
            {"distill.oec_ms": 5.0},
            tolerance=0.30,
        )
        assert failures == []

    def test_within_tolerance_passes_both_ways(self):
        failures, _report = compare(
            {"distill.oec_ms": 5.5, "batch.serial_ex_per_sec": 90.0},
            {"distill.oec_ms": 5.0, "batch.serial_ex_per_sec": 100.0},
            tolerance=0.30,
        )
        assert failures == []

    def test_baseline_only_metric_reports_not_fails(self):
        failures, report = compare(
            {}, {"service.c1.req_per_sec": 50.0}, tolerance=0.30
        )
        assert failures == []
        assert any("baseline-only" in line for line in report)
