"""Unit tests for the standard QA evaluation loop."""

import pytest

from repro.qa import evaluate_model, evaluate_with_contexts
from repro.qa.registry import build_baseline


class TestEvaluateModel:
    def test_reader_on_dataset(self, artifacts, squad_dataset):
        examples = squad_dataset.answerable_dev()[:12]
        result = evaluate_model(artifacts.reader, examples)
        assert 0.0 <= result.em.mean <= 1.0
        assert result.f1.mean >= result.em.mean  # F1 dominates EM
        assert result.em.n == 12

    def test_row_format(self, artifacts, squad_dataset):
        examples = squad_dataset.answerable_dev()[:6]
        row = evaluate_model(artifacts.reader, examples).row()
        assert set(row) == {"EM", "F1", "EM_ci", "F1_ci", "n"}
        assert 0 <= row["EM"] <= 100

    def test_empty_examples_rejected(self, artifacts):
        with pytest.raises(ValueError):
            evaluate_model(artifacts.reader, [])

    def test_simulated_baseline_path(self, artifacts, squad_dataset):
        triples = squad_dataset.calibration_triples(limit=20)
        model = build_baseline("BERT-large", "squad11", artifacts.reader, triples)
        examples = squad_dataset.answerable_dev()[:12]
        result = evaluate_model(model, examples)
        # Calibrated around 84 EM; wide tolerance for a 12-example sample.
        assert 0.4 <= result.em.mean <= 1.0

    def test_custom_contexts_shift_scores(self, artifacts, gced, squad_dataset):
        examples = squad_dataset.answerable_dev()[:8]
        evidences = {
            e.example_id: gced.distill(
                e.question, e.primary_answer, e.context
            ).evidence
            or e.context
            for e in examples
        }
        raw = evaluate_model(artifacts.reader, examples)
        distilled = evaluate_with_contexts(
            artifacts.reader, examples, lambda e: evidences[e.example_id]
        )
        assert distilled.f1.mean >= raw.f1.mean - 0.05

    def test_per_example_lengths(self, artifacts, squad_dataset):
        examples = squad_dataset.answerable_dev()[:5]
        result = evaluate_model(artifacts.reader, examples)
        assert len(result.per_example_em) == 5
        assert len(result.per_example_f1) == 5
        for em, f1 in zip(result.per_example_em, result.per_example_f1):
            assert f1 >= em
