"""Serving layer: micro-batching scheduler, DistillService, HTTP server.

Scheduler unit tests run against a stub distiller so flush policy,
ordering, and error isolation are observable without pipeline noise; the
equivalence and HTTP tests run the real pipeline from the shared
conftest artifacts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import GCED
from repro.core.batch import BatchDistiller
from repro.core.open_context import build_outcome
from repro.core.serialize import result_to_dict
from repro.retrieval import CorpusRetriever
from repro.service import (
    AdmissionController,
    DistillService,
    MicroBatchScheduler,
    QueueFullError,
    RateLimitedError,
    ServiceClient,
    ServiceError,
    TokenBucket,
    decode_cursor,
    encode_cursor,
    start_server,
)
from tests.conftest import CORPUS, QA_CASES

POISON = "__poison__"


class StubDistiller:
    """Distiller double: records batches, fails on poisoned contexts."""

    def __init__(self, batch_delay: float = 0.0) -> None:
        self.batches: list[list[tuple[str, str, str]]] = []
        self.batch_delay = batch_delay
        self._lock = threading.Lock()

    def _one(self, triple):
        if triple[2] == POISON:
            raise ValueError(f"poisoned triple {triple[0]!r}")
        return ("evidence-for",) + triple

    def distill_many(self, triples):
        with self._lock:
            self.batches.append(list(triples))
        if self.batch_delay:
            time.sleep(self.batch_delay)
        return [self._one(t) for t in triples]

    def distill_one(self, question, answer, context):
        return self._one((question, answer, context))


class TestMicroBatchScheduler:
    def test_flush_on_max_batch(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=3, max_wait_ms=10_000
        ) as sched:
            requests = [sched.submit(f"q{i}", "a", f"c{i}") for i in range(3)]
            results = [r.result(timeout=5) for r in requests]
        assert results == [("evidence-for", f"q{i}", "a", f"c{i}") for i in range(3)]
        stats = sched.stats()
        assert stats.batches == 1
        assert stats.size_flushes == 1
        assert stats.timeout_flushes == 0
        assert sched.batch_sizes == [3]

    def test_flush_on_timeout(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=8, max_wait_ms=40
        ) as sched:
            requests = sched.submit_many(
                [("q0", "a", "c0"), ("q1", "a", "c1")]
            )
            for request in requests:
                request.result(timeout=5)
            stats = sched.stats()
        # The batch never filled; only the max-wait deadline flushed it.
        assert stats.batches == 1
        assert stats.timeout_flushes == 1
        assert stats.size_flushes == 0
        assert sched.batch_sizes == [2]

    def test_immediate_flush_when_wait_zero(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=8, max_wait_ms=0
        ) as sched:
            assert sched.distill("q", "a", "c", timeout=5) == (
                "evidence-for",
                "q",
                "a",
                "c",
            )

    def test_fifo_ordering_and_batch_cap(self):
        stub = StubDistiller(batch_delay=0.03)
        with MicroBatchScheduler(
            stub, max_batch_size=2, max_wait_ms=1
        ) as sched:
            triples = [(f"q{i}", "a", f"c{i}") for i in range(7)]
            requests = sched.submit_many(triples)
            results = [r.result(timeout=10) for r in requests]
        # Each request got its own (not a batch-mate's) result.
        assert results == [("evidence-for",) + t for t in triples]
        # No batch exceeded the cap, and the flush sequence preserved
        # arrival order (FIFO fairness: nothing jumped the queue).
        assert all(len(batch) <= 2 for batch in stub.batches)
        flattened = [t for batch in stub.batches for t in batch]
        assert flattened == triples

    def test_error_isolation_within_batch(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=3, max_wait_ms=10_000
        ) as sched:
            good1, poisoned, good2 = sched.submit_many(
                [("q0", "a", "c0"), ("q1", "a", POISON), ("q2", "a", "c2")]
            )
            assert good1.result(timeout=5)[1] == "q0"
            assert good2.result(timeout=5)[1] == "q2"
            with pytest.raises(ValueError, match="poisoned"):
                poisoned.result(timeout=5)
            stats = sched.stats()
        assert stats.completed == 2
        assert stats.failed == 1

    def test_close_drains_pending_queue(self):
        stub = StubDistiller()
        sched = MicroBatchScheduler(stub, max_batch_size=64, max_wait_ms=60_000)
        requests = sched.submit_many([(f"q{i}", "a", "c") for i in range(5)])
        sched.close()
        # Despite the 60s max-wait, close() flushed everything queued.
        assert [r.result(timeout=1)[1] for r in requests] == [
            f"q{i}" for i in range(5)
        ]
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit("q", "a", "c")

    def test_rejects_bad_policy(self):
        stub = StubDistiller()
        with pytest.raises(ValueError):
            MicroBatchScheduler(stub, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(stub, max_wait_ms=-1)


def _wait_for_first_batch(stub: StubDistiller, timeout: float = 5.0) -> None:
    """Block until the flusher has picked up (and is executing) a batch."""
    deadline = time.monotonic() + timeout
    while not stub.batches:
        if time.monotonic() > deadline:
            raise AssertionError("flusher never picked up the first batch")
        time.sleep(0.005)


class TestCoalescing:
    def test_identical_queued_submits_attach_to_one_computation(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=2, max_wait_ms=10_000
        ) as sched:
            dupes = [sched.submit("q", "a", "c") for _ in range(5)]
            assert [r.coalesced for r in dupes] == [False] + [True] * 4
            other = sched.submit("q2", "a", "c2")  # fills the batch
            results = [r.result(timeout=5) for r in dupes]
            assert other.result(timeout=5)[1] == "q2"
            stats = sched.stats()
        assert results == [("evidence-for", "q", "a", "c")] * 5
        # The engine saw the triple once: coalescing, not N-way duplication.
        assert stub.batches == [[("q", "a", "c"), ("q2", "a", "c2")]]
        assert stats.submitted == 6
        assert stats.coalesced == 4
        assert stats.coalesce_hit_rate == pytest.approx(4 / 6)
        # Requests (coalesced included) vs engine-side queue slots.
        assert stats.completed == 6
        assert stats.flushed == 2
        assert stats.mean_batch_size == pytest.approx(2.0)

    def test_identical_submit_attaches_while_batch_is_executing(self):
        stub = StubDistiller(batch_delay=0.5)
        with MicroBatchScheduler(
            stub, max_batch_size=1, max_wait_ms=0
        ) as sched:
            first = sched.submit("q", "a", "c")
            _wait_for_first_batch(stub)
            # The triple is mid-flight (flusher sleeping in distill_many);
            # an identical submit must attach, not recompute.
            second = sched.submit("q", "a", "c")
            assert second.coalesced
            assert first.result(timeout=5) == second.result(timeout=5)
        assert len(stub.batches) == 1

    def test_concurrent_identical_requests_one_engine_invocation(
        self, artifacts
    ):
        direct = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        question, answer, context = QA_CASES[5]
        expected = json.dumps(
            result_to_dict(
                direct.distill(question, answer, context), question, answer
            ),
            sort_keys=True,
        )
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(
            gced, max_batch_size=64, max_wait_ms=200
        ) as service:
            requests = [
                service.submit(question, answer, context) for _ in range(8)
            ]
            payloads = [
                json.dumps(
                    result_to_dict(r.result(timeout=60), question, answer),
                    sort_keys=True,
                )
                for r in requests
            ]
            sched_stats = service.scheduler.stats()
            batch_stats = service.distiller.stats()
        # N identical concurrent requests -> exactly one engine
        # invocation, byte-identical to the serial single-shot result.
        assert payloads == [expected] * 8
        assert batch_stats.n_distilled == 1
        assert batch_stats.n_cache_hits == 0
        assert sched_stats.coalesced == 7
        assert sched_stats.flushed == 1


class TestLoadShedding:
    def test_submit_sheds_past_max_queue_depth(self):
        stub = StubDistiller(batch_delay=1.0)
        sched = MicroBatchScheduler(
            stub, max_batch_size=1, max_wait_ms=0, max_queue_depth=2
        )
        try:
            first = sched.submit("q0", "a", "c0")
            _wait_for_first_batch(stub)
            # Flusher is busy with q0; these two fill the bounded queue.
            sched.submit("q1", "a", "c1")
            sched.submit("q2", "a", "c2")
            with pytest.raises(QueueFullError) as excinfo:
                sched.submit("q3", "a", "c3")
            assert excinfo.value.retry_after > 0
            # A triple identical to in-flight work still coalesces — it
            # takes no queue slot, so a full queue does not shed it.
            dup = sched.submit("q0", "a", "c0")
            assert dup.coalesced
            # submit_many admission is all-or-nothing.
            with pytest.raises(QueueFullError):
                sched.submit_many([("q4", "a", "c4"), ("q5", "a", "c5")])
            stats = sched.stats()
            assert stats.shed == 3
            assert stats.queue_depth == 2
            assert first.result(timeout=10)[1] == "q0"
            assert dup.result(timeout=10)[1] == "q0"
        finally:
            sched.close(drain=False)

    def test_retry_after_hint_scales_with_backlog(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=4, max_wait_ms=10_000, max_queue_depth=0
        ) as sched:
            # No flushes observed yet: the hint falls back to the flush
            # policy rather than claiming zero wait.
            assert sched.retry_after_hint() > 0


class TestAdmissionControl:
    def test_token_bucket_debits_and_reports_exact_wait(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert bucket.try_acquire(5.0, now=0.0) == 0.0  # starts full
        assert bucket.try_acquire(1.0, now=0.0) == pytest.approx(0.1)
        # Refill at 10/s: 0.1s later exactly one token is back.
        assert bucket.try_acquire(1.0, now=0.1) == 0.0
        # Refill never exceeds the burst ceiling.
        assert bucket.try_acquire(6.0, now=100.0) == pytest.approx(0.1)

    def test_controller_disabled_by_default(self):
        ctrl = AdmissionController()
        assert not ctrl.enabled
        for _ in range(1000):
            ctrl.admit("anyone", cost=100.0)  # never sheds
        assert ctrl.stats()["rate_limited"] == 0

    def test_rate_limits_per_client_with_retry_hint(self):
        ctrl = AdmissionController(rate=1.0, burst=2.0)
        ctrl.admit("alice", cost=2.0)
        with pytest.raises(RateLimitedError) as excinfo:
            ctrl.admit("alice", cost=2.0)
        assert 0 < excinfo.value.retry_after <= 2.0
        # Distinct clients draw from independent buckets.
        ctrl.admit("bob", cost=2.0)
        # Anonymous requests share one default bucket.
        ctrl.admit(None, cost=2.0)
        with pytest.raises(RateLimitedError):
            ctrl.admit(None, cost=1.0)
        stats = ctrl.stats()
        assert stats["enabled"] is True
        assert stats["admitted"] == 3
        assert stats["rate_limited"] == 2
        assert stats["clients"] == 3

    def test_client_table_is_lru_bounded(self):
        ctrl = AdmissionController(rate=1.0, burst=1.0, max_clients=2)
        ctrl.admit("a")
        ctrl.admit("b")
        ctrl.admit("c")  # evicts "a"
        assert ctrl.stats()["clients"] == 2
        ctrl.admit("a")  # re-admitted with a fresh (full) bucket
        with pytest.raises(RateLimitedError):
            ctrl.admit("c")  # still tracked: bucket empty


class TestShutdownEdges:
    def test_close_without_drain_fails_queued_requests_promptly(self):
        stub = StubDistiller(batch_delay=0.5)
        sched = MicroBatchScheduler(stub, max_batch_size=1, max_wait_ms=0)
        first = sched.submit("q0", "a", "c0")
        _wait_for_first_batch(stub)
        queued = [sched.submit(f"q{i}", "a", f"c{i}") for i in (1, 2, 3)]
        attached = sched.submit("q1", "a", "c1")
        assert attached.coalesced
        started = time.monotonic()
        sched.close(timeout=10, drain=False)
        # No hang: close did not wait out the 3 x 0.5s backlog.
        assert time.monotonic() - started < 5
        for request in [*queued, attached]:
            with pytest.raises(RuntimeError, match="closed before"):
                request.result(timeout=1)
        # The batch already executing still completed.
        assert first.result(timeout=5)[1] == "q0"
        stats = sched.stats()
        assert stats.failed == 4
        assert stats.queue_depth == 0

    def test_submit_after_close_raises(self):
        sched = MicroBatchScheduler(StubDistiller(), max_wait_ms=1)
        sched.close()
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit("q", "a", "c")
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit_many([("q", "a", "c")])
        sched.close()  # idempotent

    def test_coalesced_requests_share_failure_batchmates_unaffected(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=2, max_wait_ms=10_000
        ) as sched:
            poisoned = sched.submit("qp", "a", POISON)
            attached = sched.submit("qp", "a", POISON)
            assert attached.coalesced
            good = sched.submit("qg", "a", "cg")  # fills the batch
            assert good.result(timeout=5)[1] == "qg"
            # Both holders of the shared computation see the same error;
            # the batch-mate is untouched (per-request isolation).
            for request in (poisoned, attached):
                with pytest.raises(ValueError, match="poisoned"):
                    request.result(timeout=5)
            stats = sched.stats()
        assert stats.completed == 1
        assert stats.failed == 2


class TestCursor:
    def test_round_trip(self):
        cursor = encode_cursor("who?", "them", 5, 10, 3)
        assert decode_cursor(cursor) == {
            "question": "who?",
            "answer": "them",
            "k": 5,
            "offset": 10,
            "page_size": 3,
        }

    def test_rejects_garbage_and_tampering(self):
        import base64

        with pytest.raises(ValueError, match="malformed"):
            decode_cursor("!!not-base64!!")
        with pytest.raises(ValueError, match="malformed"):
            decode_cursor(
                base64.urlsafe_b64encode(b'"a-string"').decode("ascii")
            )
        for payload in (
            b'{"v":99,"q":"q","a":"a","k":1,"o":0,"s":1}',  # bad version
            b'{"v":1,"q":7,"a":"a","k":1,"o":0,"s":1}',  # non-string q
            b'{"v":1,"q":"q","a":"a","k":true,"o":0,"s":1}',  # bool k
            b'{"v":1,"q":"q","a":"a","k":1,"o":-2,"s":1}',  # negative offset
            b'{"v":1,"q":"q","a":"a","k":0,"o":0,"s":1}',  # k < 1
        ):
            tampered = base64.urlsafe_b64encode(payload).decode("ascii")
            with pytest.raises(ValueError, match="malformed"):
                decode_cursor(tampered)


class TestServedEquivalence:
    def test_served_results_byte_identical_to_single_shot(self, artifacts):
        direct_gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        direct = {
            case[0]: json.dumps(
                result_to_dict(direct_gced.distill(*case), case[0], case[1]),
                sort_keys=True,
            )
            for case in QA_CASES
        }
        served_gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(
            served_gced, max_batch_size=4, max_wait_ms=10
        ) as service:
            with ThreadPoolExecutor(max_workers=4) as pool:
                served = list(
                    pool.map(lambda c: (c, service.distill(*c)), QA_CASES)
                )
        for case, result in served:
            payload = json.dumps(
                result_to_dict(result, case[0], case[1]), sort_keys=True
            )
            assert payload == direct[case[0]]

    def test_distill_batch_isolates_poisoned_triple(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(gced, max_batch_size=4, max_wait_ms=5) as service:
            outcomes = service.distill_batch(
                [QA_CASES[0], ("q", "a", "   "), QA_CASES[1]]
            )
        assert outcomes[0].evidence
        assert isinstance(outcomes[1], ValueError)
        assert outcomes[2].evidence

    def test_batch_distiller_counters_consistent_under_concurrent_flushes(
        self, artifacts
    ):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        distiller = BatchDistiller(gced)
        n_threads, rounds = 4, 3

        def hammer(_seed: int) -> int:
            total = 0
            for _ in range(rounds):
                results = distiller.distill_many(QA_CASES)
                assert all(r is not None for r in results)
                total += len(QA_CASES)
            return total

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            submitted = sum(pool.map(hammer, range(n_threads)))
        stats = distiller.stats()
        # Every request was either distilled-and-recorded or a memo hit;
        # under racy counters this bookkeeping identity is what breaks.
        assert stats.n_distilled + stats.n_cache_hits == submitted
        assert stats.n_distilled >= len(QA_CASES)


@pytest.fixture(scope="module")
def served(artifacts):
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    service = DistillService(
        gced,
        max_batch_size=4,
        max_wait_ms=10,
        retriever=CorpusRetriever.build(CORPUS, n_shards=2),
    )
    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


class TestHTTPServer:
    def test_healthz(self, served):
        _service, client = served
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_distill_round_trip(self, served, artifacts):
        service, client = served
        question, answer, context = QA_CASES[0]
        payload = client.distill(question, answer, context)
        direct = GCED(
            qa_model=artifacts.reader, artifacts=artifacts
        ).distill(question, answer, context)
        assert payload["evidence"] == direct.evidence
        assert payload["question"] == question
        assert payload["scores"]["hybrid"] == pytest.approx(
            direct.scores.hybrid
        )

    def test_concurrent_distills_all_answered(self, served):
        _service, client = served
        cases = [QA_CASES[i % len(QA_CASES)] for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            payloads = list(pool.map(lambda c: client.distill(*c), cases))
        assert len(payloads) == 8
        for (question, _answer, _context), payload in zip(cases, payloads):
            assert payload["question"] == question

    def test_batch_endpoint_isolates_errors(self, served):
        _service, client = served
        question, answer, context = QA_CASES[2]
        payload = client.distill_batch(
            [
                {"question": question, "answer": answer, "context": context},
                {"question": "poisoned", "answer": "x", "context": "  "},
            ]
        )
        assert payload["errors"] == 1
        assert payload["results"][0]["evidence"]
        assert "error" in payload["results"][1]

    def test_stats_reports_timings_queue_and_cache_rates(self, served):
        service, client = served
        client.distill(*QA_CASES[3])
        stats = client.stats()
        assert stats["service"]["config"]["max_batch_size"] == 4
        assert stats["scheduler"]["completed"] >= 1
        assert "queue_depth" in stats["scheduler"]
        assert stats["batch"]["n_distilled"] >= 1
        assert stats["stages"], "per-stage timings missing"
        for timing in stats["stages"].values():
            assert timing["calls"] >= 1
            assert timing["seconds"] >= 0
        assert "results" in stats["caches"]
        for cache in stats["caches"].values():
            assert 0.0 <= cache["hit_rate"] <= 1.0
        # The in-process view and the HTTP view agree on request counts.
        assert service.stats()["scheduler"]["submitted"] >= stats[
            "scheduler"
        ]["submitted"]

    def test_stats_concurrent_with_distills_never_errors(self, served):
        # Regression: /stats snapshots the live pipeline profile while
        # the flusher mutates it; merge() must not iterate live dicts.
        _service, client = served
        cases = [QA_CASES[i % len(QA_CASES)] for i in range(12)]
        with ThreadPoolExecutor(max_workers=6) as pool:
            distills = [pool.submit(client.distill, *case) for case in cases]
            stats_calls = [pool.submit(client.stats) for _ in range(12)]
            for future in distills + stats_calls:
                future.result(timeout=60)

    def test_rejects_empty_context_with_400(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.distill("q", "a", "   ")
        assert excinfo.value.status == 400

    def test_rejects_missing_fields_with_400(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("/distill", {"question": "q"})
        assert excinfo.value.status == 400
        assert "answer" in str(excinfo.value)

    def test_unknown_path_404(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("/nope")
        assert excinfo.value.status == 404

    def test_invalid_json_body_400(self, served):
        _service, client = served
        request = urllib.request.Request(
            f"{client.base_url}/distill",
            data=b"not-json{",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_wrong_method_on_known_path_405_with_allow(self, served):
        _service, client = served
        # GET on a POST-only route.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                urllib.request.Request(f"{client.base_url}/distill"), timeout=10
            )
        assert excinfo.value.code == 405
        assert excinfo.value.headers.get("Allow") == "POST"
        # POST on a GET-only route.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                urllib.request.Request(
                    f"{client.base_url}/healthz",
                    data=b"{}",
                    headers={"Content-Type": "application/json"},
                ),
                timeout=10,
            )
        assert excinfo.value.code == 405
        assert excinfo.value.headers.get("Allow") == "GET"


class TestAskEndpoint:
    def test_served_ask_matches_inline_open_context(self, served):
        service, client = served
        question, answer, _context = QA_CASES[2]
        served_payload = client.ask(question, answer, k=3)
        hits = service.retriever.retrieve_for_qa(question, answer, k=3)
        direct = build_outcome(
            question,
            answer,
            hits,
            [
                service.gced.distill(question, answer, hit.text)
                for hit in hits
            ],
        ).to_dict()
        assert json.dumps(served_payload, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_ask_ranks_gold_paragraph_first(self, served):
        _service, client = served
        question, answer, context = QA_CASES[0]
        payload = client.ask(question, answer, k=3)
        assert payload["best_evidence"]
        assert payload["candidates"][0]["retrieval"]["doc_id"] == CORPUS.index(
            context
        )
        assert payload["errors"] == 0

    def test_ask_rejects_missing_fields_and_bad_k(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("/ask", {"question": "q"})
        assert excinfo.value.status == 400
        assert "answer" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client._request("/ask", {"question": "q", "answer": "a", "k": 0})
        assert excinfo.value.status == 400
        assert "'k'" in str(excinfo.value)

    def test_ask_without_retriever_raises_inline(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(gced, max_wait_ms=1) as service:
            with pytest.raises(RuntimeError, match="no retriever"):
                service.ask("q", "a")

    def test_stats_reports_retrieval_block(self, served):
        _service, client = served
        retrieval = client.stats()["service"]["retrieval"]
        assert retrieval["docs"] == len(CORPUS)
        assert retrieval["shards"] == 2
        assert retrieval["scorer"] == "bm25"

    def test_stats_reports_admission_and_shed_counters(self, served):
        _service, client = served
        stats = client.stats()
        admission = stats["admission"]
        assert admission["enabled"] is False  # served fixture: no limits
        assert {"rate_per_sec", "burst", "clients", "admitted"} <= set(
            admission
        )
        scheduler = stats["scheduler"]
        for key in ("coalesced", "coalesce_hit_rate", "shed", "ewma_batch_ms"):
            assert key in scheduler


class TestPagedAsk:
    def test_pages_concatenate_to_fat_response(self, served):
        _service, client = served
        question, answer, _context = QA_CASES[1]
        fat = client.ask(question, answer, k=3)
        n = len(fat["candidates"])
        assert n >= 2, "corpus too small for a meaningful paging test"
        pages = list(client.ask_pages(question, answer, k=3, page_size=1))
        assert len(pages) == n
        stitched = [c for page in pages for c in page["candidates"]]
        assert json.dumps(stitched, sort_keys=True) == json.dumps(
            fat["candidates"], sort_keys=True
        )
        for page in pages:
            # Summary fields ride on every page, slice-independent.
            assert page["best_evidence"] == fat["best_evidence"]
            assert page["retrieved"] == fat["retrieved"]
            assert page["errors"] == fat["errors"]
        assert all(page["next_cursor"] for page in pages[:-1])
        assert pages[-1]["next_cursor"] is None
        assert pages[0]["page"] == {"offset": 0, "size": 1, "returned": 1}

    def test_fresh_paged_request_and_manual_cursor_follow(self, served):
        _service, client = served
        question, answer, _context = QA_CASES[2]
        first = client.ask(question, answer, k=2, page_size=1)
        assert first["page"]["offset"] == 0
        assert len(first["candidates"]) == 1
        assert first["next_cursor"]
        second = client.ask(cursor=first["next_cursor"])
        assert second["page"]["offset"] == 1
        assert second["candidates"][0] != first["candidates"][0]

    def test_page_size_override_on_cursor(self, served):
        _service, client = served
        question, answer, _context = QA_CASES[0]
        first = client.ask(question, answer, k=3, page_size=1)
        assert first["next_cursor"]
        rest = client.ask(cursor=first["next_cursor"], page_size=2)
        assert rest["page"]["size"] == 2

    def test_offset_past_end_yields_empty_page(self, served):
        _service, client = served
        question, answer, _context = QA_CASES[0]
        cursor = encode_cursor(question, answer, 2, 99, 2)
        page = client.ask(cursor=cursor)
        assert page["candidates"] == []
        assert page["page"]["returned"] == 0
        assert page["next_cursor"] is None

    def test_invalid_cursor_and_page_size_rejected_400(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.ask(cursor="garbage-not-a-cursor")
        assert excinfo.value.status == 400
        assert "cursor" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client._request("/ask", {"cursor": 7})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "/ask", {"question": "q", "answer": "a", "page_size": 0}
            )
        assert excinfo.value.status == 400
        assert "page_size" in str(excinfo.value)


@pytest.fixture(scope="module")
def limited(artifacts):
    """A served service with aggressive per-client rate limiting.

    rate=0.01/s makes mid-test refill negligible; burst=2 admits exactly
    two unit-cost requests per client before shedding.
    """
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    service = DistillService(
        gced,
        max_batch_size=4,
        max_wait_ms=5,
        client_rate=0.01,
        client_burst=2.0,
        retriever=CorpusRetriever.build(CORPUS, n_shards=2),
    )
    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


class TestRateLimitingHTTP:
    def test_429_with_retry_after_per_client(self, limited):
        service, base_url = limited
        question, answer, context = QA_CASES[0]
        alice = ServiceClient(base_url, client_id="alice")
        alice.distill(question, answer, context)
        alice.distill(question, answer, context)  # burst spent
        with pytest.raises(ServiceError) as excinfo:
            alice.distill(question, answer, context)
        error = excinfo.value
        assert error.status == 429
        assert error.retry_after is not None and error.retry_after > 0
        assert error.payload["retry_after_seconds"] == pytest.approx(
            error.retry_after
        )
        # A distinct client id draws from its own (full) bucket.
        bob = ServiceClient(base_url, client_id="bob")
        assert bob.distill(question, answer, context)["evidence"]
        assert service.stats()["admission"]["rate_limited"] >= 1

    def test_retry_after_header_is_whole_seconds(self, limited):
        _service, base_url = limited
        question, answer, context = QA_CASES[0]
        body = json.dumps(
            {"question": question, "answer": answer, "context": context}
        ).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "X-Client-Id": "carol",
        }

        def post():
            request = urllib.request.Request(
                f"{base_url}/distill", data=body, headers=headers
            )
            return urllib.request.urlopen(request, timeout=30)

        post()
        post()  # burst spent
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post()
        assert excinfo.value.code == 429
        header = excinfo.value.headers.get("Retry-After")
        assert header is not None and header.isdigit()
        assert int(header) >= 1

    def test_anonymous_requests_share_default_bucket(self, limited):
        _service, base_url = limited
        question, answer, context = QA_CASES[1]
        anon_a = ServiceClient(base_url)
        anon_b = ServiceClient(base_url)
        anon_a.distill(question, answer, context)
        anon_a.distill(question, answer, context)
        # A different *connection* without an id is still the same bucket.
        with pytest.raises(ServiceError) as excinfo:
            anon_b.distill(question, answer, context)
        assert excinfo.value.status == 429

    def test_ask_charged_k_tokens(self, limited):
        _service, base_url = limited
        question, answer, _context = QA_CASES[2]
        dave = ServiceClient(base_url, client_id="dave")
        with pytest.raises(ServiceError) as excinfo:
            dave.ask(question, answer, k=3)  # cost 3 > burst 2
        assert excinfo.value.status == 429
        # k=2 fits the burst exactly.
        assert "candidates" in dave.ask(question, answer, k=2)
