"""Serving layer: micro-batching scheduler, DistillService, HTTP server.

Scheduler unit tests run against a stub distiller so flush policy,
ordering, and error isolation are observable without pipeline noise; the
equivalence and HTTP tests run the real pipeline from the shared
conftest artifacts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import GCED
from repro.core.batch import BatchDistiller
from repro.core.open_context import build_outcome
from repro.core.serialize import result_to_dict
from repro.retrieval import CorpusRetriever
from repro.service import (
    DistillService,
    MicroBatchScheduler,
    ServiceClient,
    ServiceError,
    start_server,
)
from tests.conftest import CORPUS, QA_CASES

POISON = "__poison__"


class StubDistiller:
    """Distiller double: records batches, fails on poisoned contexts."""

    def __init__(self, batch_delay: float = 0.0) -> None:
        self.batches: list[list[tuple[str, str, str]]] = []
        self.batch_delay = batch_delay
        self._lock = threading.Lock()

    def _one(self, triple):
        if triple[2] == POISON:
            raise ValueError(f"poisoned triple {triple[0]!r}")
        return ("evidence-for",) + triple

    def distill_many(self, triples):
        with self._lock:
            self.batches.append(list(triples))
        if self.batch_delay:
            time.sleep(self.batch_delay)
        return [self._one(t) for t in triples]

    def distill_one(self, question, answer, context):
        return self._one((question, answer, context))


class TestMicroBatchScheduler:
    def test_flush_on_max_batch(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=3, max_wait_ms=10_000
        ) as sched:
            requests = [sched.submit(f"q{i}", "a", f"c{i}") for i in range(3)]
            results = [r.result(timeout=5) for r in requests]
        assert results == [("evidence-for", f"q{i}", "a", f"c{i}") for i in range(3)]
        stats = sched.stats()
        assert stats.batches == 1
        assert stats.size_flushes == 1
        assert stats.timeout_flushes == 0
        assert sched.batch_sizes == [3]

    def test_flush_on_timeout(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=8, max_wait_ms=40
        ) as sched:
            requests = sched.submit_many(
                [("q0", "a", "c0"), ("q1", "a", "c1")]
            )
            for request in requests:
                request.result(timeout=5)
            stats = sched.stats()
        # The batch never filled; only the max-wait deadline flushed it.
        assert stats.batches == 1
        assert stats.timeout_flushes == 1
        assert stats.size_flushes == 0
        assert sched.batch_sizes == [2]

    def test_immediate_flush_when_wait_zero(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=8, max_wait_ms=0
        ) as sched:
            assert sched.distill("q", "a", "c", timeout=5) == (
                "evidence-for",
                "q",
                "a",
                "c",
            )

    def test_fifo_ordering_and_batch_cap(self):
        stub = StubDistiller(batch_delay=0.03)
        with MicroBatchScheduler(
            stub, max_batch_size=2, max_wait_ms=1
        ) as sched:
            triples = [(f"q{i}", "a", f"c{i}") for i in range(7)]
            requests = sched.submit_many(triples)
            results = [r.result(timeout=10) for r in requests]
        # Each request got its own (not a batch-mate's) result.
        assert results == [("evidence-for",) + t for t in triples]
        # No batch exceeded the cap, and the flush sequence preserved
        # arrival order (FIFO fairness: nothing jumped the queue).
        assert all(len(batch) <= 2 for batch in stub.batches)
        flattened = [t for batch in stub.batches for t in batch]
        assert flattened == triples

    def test_error_isolation_within_batch(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=3, max_wait_ms=10_000
        ) as sched:
            good1, poisoned, good2 = sched.submit_many(
                [("q0", "a", "c0"), ("q1", "a", POISON), ("q2", "a", "c2")]
            )
            assert good1.result(timeout=5)[1] == "q0"
            assert good2.result(timeout=5)[1] == "q2"
            with pytest.raises(ValueError, match="poisoned"):
                poisoned.result(timeout=5)
            stats = sched.stats()
        assert stats.completed == 2
        assert stats.failed == 1

    def test_close_drains_pending_queue(self):
        stub = StubDistiller()
        sched = MicroBatchScheduler(stub, max_batch_size=64, max_wait_ms=60_000)
        requests = sched.submit_many([(f"q{i}", "a", "c") for i in range(5)])
        sched.close()
        # Despite the 60s max-wait, close() flushed everything queued.
        assert [r.result(timeout=1)[1] for r in requests] == [
            f"q{i}" for i in range(5)
        ]
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit("q", "a", "c")

    def test_rejects_bad_policy(self):
        stub = StubDistiller()
        with pytest.raises(ValueError):
            MicroBatchScheduler(stub, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(stub, max_wait_ms=-1)


class TestServedEquivalence:
    def test_served_results_byte_identical_to_single_shot(self, artifacts):
        direct_gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        direct = {
            case[0]: json.dumps(
                result_to_dict(direct_gced.distill(*case), case[0], case[1]),
                sort_keys=True,
            )
            for case in QA_CASES
        }
        served_gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(
            served_gced, max_batch_size=4, max_wait_ms=10
        ) as service:
            with ThreadPoolExecutor(max_workers=4) as pool:
                served = list(
                    pool.map(lambda c: (c, service.distill(*c)), QA_CASES)
                )
        for case, result in served:
            payload = json.dumps(
                result_to_dict(result, case[0], case[1]), sort_keys=True
            )
            assert payload == direct[case[0]]

    def test_distill_batch_isolates_poisoned_triple(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(gced, max_batch_size=4, max_wait_ms=5) as service:
            outcomes = service.distill_batch(
                [QA_CASES[0], ("q", "a", "   "), QA_CASES[1]]
            )
        assert outcomes[0].evidence
        assert isinstance(outcomes[1], ValueError)
        assert outcomes[2].evidence

    def test_batch_distiller_counters_consistent_under_concurrent_flushes(
        self, artifacts
    ):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        distiller = BatchDistiller(gced)
        n_threads, rounds = 4, 3

        def hammer(_seed: int) -> int:
            total = 0
            for _ in range(rounds):
                results = distiller.distill_many(QA_CASES)
                assert all(r is not None for r in results)
                total += len(QA_CASES)
            return total

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            submitted = sum(pool.map(hammer, range(n_threads)))
        stats = distiller.stats()
        # Every request was either distilled-and-recorded or a memo hit;
        # under racy counters this bookkeeping identity is what breaks.
        assert stats.n_distilled + stats.n_cache_hits == submitted
        assert stats.n_distilled >= len(QA_CASES)


@pytest.fixture(scope="module")
def served(artifacts):
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    service = DistillService(
        gced,
        max_batch_size=4,
        max_wait_ms=10,
        retriever=CorpusRetriever.build(CORPUS, n_shards=2),
    )
    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


class TestHTTPServer:
    def test_healthz(self, served):
        _service, client = served
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_distill_round_trip(self, served, artifacts):
        service, client = served
        question, answer, context = QA_CASES[0]
        payload = client.distill(question, answer, context)
        direct = GCED(
            qa_model=artifacts.reader, artifacts=artifacts
        ).distill(question, answer, context)
        assert payload["evidence"] == direct.evidence
        assert payload["question"] == question
        assert payload["scores"]["hybrid"] == pytest.approx(
            direct.scores.hybrid
        )

    def test_concurrent_distills_all_answered(self, served):
        _service, client = served
        cases = [QA_CASES[i % len(QA_CASES)] for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            payloads = list(pool.map(lambda c: client.distill(*c), cases))
        assert len(payloads) == 8
        for (question, _answer, _context), payload in zip(cases, payloads):
            assert payload["question"] == question

    def test_batch_endpoint_isolates_errors(self, served):
        _service, client = served
        question, answer, context = QA_CASES[2]
        payload = client.distill_batch(
            [
                {"question": question, "answer": answer, "context": context},
                {"question": "poisoned", "answer": "x", "context": "  "},
            ]
        )
        assert payload["errors"] == 1
        assert payload["results"][0]["evidence"]
        assert "error" in payload["results"][1]

    def test_stats_reports_timings_queue_and_cache_rates(self, served):
        service, client = served
        client.distill(*QA_CASES[3])
        stats = client.stats()
        assert stats["service"]["config"]["max_batch_size"] == 4
        assert stats["scheduler"]["completed"] >= 1
        assert "queue_depth" in stats["scheduler"]
        assert stats["batch"]["n_distilled"] >= 1
        assert stats["stages"], "per-stage timings missing"
        for timing in stats["stages"].values():
            assert timing["calls"] >= 1
            assert timing["seconds"] >= 0
        assert "results" in stats["caches"]
        for cache in stats["caches"].values():
            assert 0.0 <= cache["hit_rate"] <= 1.0
        # The in-process view and the HTTP view agree on request counts.
        assert service.stats()["scheduler"]["submitted"] >= stats[
            "scheduler"
        ]["submitted"]

    def test_stats_concurrent_with_distills_never_errors(self, served):
        # Regression: /stats snapshots the live pipeline profile while
        # the flusher mutates it; merge() must not iterate live dicts.
        _service, client = served
        cases = [QA_CASES[i % len(QA_CASES)] for i in range(12)]
        with ThreadPoolExecutor(max_workers=6) as pool:
            distills = [pool.submit(client.distill, *case) for case in cases]
            stats_calls = [pool.submit(client.stats) for _ in range(12)]
            for future in distills + stats_calls:
                future.result(timeout=60)

    def test_rejects_empty_context_with_400(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.distill("q", "a", "   ")
        assert excinfo.value.status == 400

    def test_rejects_missing_fields_with_400(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("/distill", {"question": "q"})
        assert excinfo.value.status == 400
        assert "answer" in str(excinfo.value)

    def test_unknown_path_404(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("/nope")
        assert excinfo.value.status == 404

    def test_invalid_json_body_400(self, served):
        _service, client = served
        request = urllib.request.Request(
            f"{client.base_url}/distill",
            data=b"not-json{",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_wrong_method_on_known_path_405_with_allow(self, served):
        _service, client = served
        # GET on a POST-only route.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                urllib.request.Request(f"{client.base_url}/distill"), timeout=10
            )
        assert excinfo.value.code == 405
        assert excinfo.value.headers.get("Allow") == "POST"
        # POST on a GET-only route.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                urllib.request.Request(
                    f"{client.base_url}/healthz",
                    data=b"{}",
                    headers={"Content-Type": "application/json"},
                ),
                timeout=10,
            )
        assert excinfo.value.code == 405
        assert excinfo.value.headers.get("Allow") == "GET"


class TestAskEndpoint:
    def test_served_ask_matches_inline_open_context(self, served):
        service, client = served
        question, answer, _context = QA_CASES[2]
        served_payload = client.ask(question, answer, k=3)
        hits = service.retriever.retrieve_for_qa(question, answer, k=3)
        direct = build_outcome(
            question,
            answer,
            hits,
            [
                service.gced.distill(question, answer, hit.text)
                for hit in hits
            ],
        ).to_dict()
        assert json.dumps(served_payload, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_ask_ranks_gold_paragraph_first(self, served):
        _service, client = served
        question, answer, context = QA_CASES[0]
        payload = client.ask(question, answer, k=3)
        assert payload["best_evidence"]
        assert payload["candidates"][0]["retrieval"]["doc_id"] == CORPUS.index(
            context
        )
        assert payload["errors"] == 0

    def test_ask_rejects_missing_fields_and_bad_k(self, served):
        _service, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("/ask", {"question": "q"})
        assert excinfo.value.status == 400
        assert "answer" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client._request("/ask", {"question": "q", "answer": "a", "k": 0})
        assert excinfo.value.status == 400
        assert "'k'" in str(excinfo.value)

    def test_ask_without_retriever_raises_inline(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(gced, max_wait_ms=1) as service:
            with pytest.raises(RuntimeError, match="no retriever"):
                service.ask("q", "a")

    def test_stats_reports_retrieval_block(self, served):
        _service, client = served
        retrieval = client.stats()["service"]["retrieval"]
        assert retrieval["docs"] == len(CORPUS)
        assert retrieval["shards"] == 2
        assert retrieval["scorer"] == "bm25"
