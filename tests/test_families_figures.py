"""Unit tests for the family-relations generator and ASCII figures."""

import pytest

from repro.datasets.families import FamilyGenerator
from repro.eval.figures import ascii_chart, degradation_chart


class TestFamilyGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        return FamilyGenerator(seed=3).generate(n_examples=10)

    def test_sizes(self, generated):
        dataset, graph, families = generated
        assert len(dataset.dev) == 10
        assert len(families) == 10
        assert len(graph) > 0

    def test_answers_located(self, generated):
        dataset, _graph, _families = generated
        for example in dataset.dev:
            gold = example.answers[0]
            found = example.context[
                example.answer_start : example.answer_start + len(gold)
            ]
            assert found == gold

    def test_mother_reachable_through_graph(self, generated):
        _dataset, graph, families = generated
        for family in families:
            path = graph.relation_path(family["child"], family["mother"])
            assert path is not None
            assert len(path) == 2  # child -> father -> mother

    def test_names_unique_within_run(self, generated):
        _dataset, _graph, families = generated
        names = [f[k] for f in families for k in ("child", "father", "mother")]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        a = FamilyGenerator(seed=7).generate(4)
        b = FamilyGenerator(seed=7).generate(4)
        assert [e.context for e in a[0].dev] == [e.context for e in b[0].dev]

    def test_question_names_child(self, generated):
        dataset, _graph, families = generated
        for example, family in zip(dataset.dev, families):
            assert family["child"] in example.question


class TestAsciiChart:
    def test_renders_series(self):
        chart = ascii_chart(
            {"model-a": [(0, 90), (1, 80)], "model-b": [(0, 95), (1, 93)]},
            title="demo",
        )
        assert "demo" in chart
        assert "a=model-a" in chart and "b=model-b" in chart
        assert "a" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_degenerate_ranges(self):
        chart = ascii_chart({"flat": [(0, 5), (1, 5)]})
        assert "flat" in chart

    def test_degradation_chart_from_rows(self):
        rows = [
            {"model": "m", "delta": 0.0, "EM": 95.0},
            {"model": "m", "delta": 1.0, "EM": 90.0},
        ]
        chart = degradation_chart(rows, metric="EM")
        assert "EM vs delta" in chart
        assert "m" in chart

    def test_overlapping_points_marked(self):
        chart = ascii_chart(
            {"x": [(0.0, 1.0)], "y": [(0.0, 1.0)]},
            width=10,
            height=4,
        )
        assert "*" in chart
