"""Pipeline-snapshot plane: byte identity, shared-memory hygiene, staleness.

Covers the contracts the snapshot plane (:mod:`repro.engine.snapshot`)
states: save→load→save byte identity for every serialized section,
process-backend distillation byte-identical with the snapshot on or off,
no leaked ``/dev/shm`` segments (including after a worker crash), stale
snapshots refused on config change, and the byte-accurate accounting of
lazily-growing compiled artifacts.
"""

from __future__ import annotations

import os
import pickle

import pytest
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

from repro import GCED, QATrainer
from repro.core.batch import BatchDistiller
from repro.core.config import GCEDConfig
from repro.engine.executor import ParallelExecutor
from repro.engine.snapshot import (
    EntryMap,
    PipelineSnapshot,
    activate,
    deactivate,
    dump_for_workers,
    load_active_section,
    pack_entry_map,
)
from repro.lm.ngram import FlatNGramTables, NGramLanguageModel
from repro.qa.compiled import CompiledContext, ContextCompiler, estimate_compiled_bytes
from repro.retrieval.index import InvertedIndex
from repro.utils.cache import LRUCache, MISSING

from tests.conftest import CORPUS, QA_CASES


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


def _boom(_item) -> None:
    # Hard worker death (no exception propagation): the pool breaks.
    os._exit(13)


# --------------------------------------------------------------- snapshot core


class TestPipelineSnapshot:
    def test_sections_round_trip_via_shared_memory(self):
        sections = {"a": b"alpha", "b": b"", "c": b"gamma-gamma"}
        snap = PipelineSnapshot(sections, fingerprint="fp")
        try:
            assert snap.section_names() == ("a", "b", "c")
            attached = PipelineSnapshot.attach(snap.handle)
            try:
                for name, blob in sections.items():
                    assert attached.section(name) == blob
                with pytest.raises(KeyError):
                    attached.section("missing")
            finally:
                attached.close()
        finally:
            snap.close(unlink=True)

    def test_inline_fallback_round_trip(self):
        snap = PipelineSnapshot({"x": b"12345"}, use_shared_memory=False)
        assert snap.shm_name is None
        attached = PipelineSnapshot.attach(snap.handle)
        assert attached.section("x") == b"12345"
        snap.close(unlink=True)

    def test_close_unlinks_segment(self):
        snap = PipelineSnapshot({"x": b"payload"})
        name = snap.shm_name
        assert name is not None and _segment_exists(name)
        snap.close(unlink=True)
        assert not _segment_exists(name)
        with pytest.raises(RuntimeError):
            snap.section("x")
        snap.close(unlink=True)  # idempotent

    def test_active_registry(self):
        snap = PipelineSnapshot({"lm": b"tables"}, use_shared_memory=False)
        activate(snap)
        try:
            assert load_active_section("lm") == b"tables"
            assert load_active_section("nope") is None
        finally:
            snap.close(unlink=True)
        # close() deactivates, so hollow objects fail loudly, not stalely.
        assert load_active_section("lm") is None
        deactivate()

    def test_entry_map_drops_unpicklable(self):
        blob = pack_entry_map({"good": 1, "bad": lambda: None})
        entries = EntryMap(blob)
        assert len(entries) == 1
        assert entries.get("good") == 1
        assert entries.get("bad", MISSING) is MISSING


# ----------------------------------------------------------- section identity


class TestSectionByteIdentity:
    def test_flat_lm_save_load_save(self, artifacts):
        lm = artifacts.language_model
        first = lm.snapshot_bytes()
        loaded = NGramLanguageModel.from_flat(FlatNGramTables.from_bytes(first))
        assert loaded.snapshot_bytes() == first
        assert loaded.vocab_size == lm.vocab_size
        assert loaded.unigrams == lm.unigrams
        assert loaded.bigrams == lm.bigrams
        assert loaded.trigrams == lm.trigrams
        tokens = CORPUS[0].lower().split()[:12]
        assert loaded.perplexity(tokens) == lm.perplexity(tokens)

    def test_hollow_lm_rehydrates_from_active_snapshot(self, artifacts):
        lm = artifacts.language_model
        payload = dump_for_workers(lm)
        snap = PipelineSnapshot({"lm": lm.snapshot_bytes()})
        try:
            activate(snap)
            hollow = pickle.loads(payload)
            assert hollow.unigrams is None
            assert hollow.probability("the") == lm.probability("the")
        finally:
            snap.close(unlink=True)
        orphan = pickle.loads(payload)
        with pytest.raises(RuntimeError, match="no snapshot is active"):
            orphan.probability("the")

    def test_index_save_load_save(self):
        index = InvertedIndex.build(CORPUS, n_shards=2)
        first = index.to_snapshot_bytes()
        loaded = InvertedIndex.from_snapshot_bytes(first)
        assert loaded.to_snapshot_bytes() == first
        assert loaded.postings("the") == index.postings("the")

    def test_compiled_export_import_export(self, artifacts):
        reader = artifacts.reader
        compiler = ContextCompiler()
        saved, reader.context_compiler = reader.context_compiler, compiler
        try:
            for question, _answer, context in QA_CASES[:3]:
                reader.predict(question, context)
        finally:
            reader.context_compiler = saved
        states = compiler.export_states()
        assert states  # the traffic compiled something
        for text, state in states.items():
            imported = CompiledContext.import_state(state)
            again = imported.export_state()
            assert pickle.dumps(again, protocol=pickle.HIGHEST_PROTOCOL) == (
                pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            ), f"export/import/export drifted for {text[:40]!r}"


# --------------------------------------------------------- distill equivalence


class TestDistillEquivalence:
    def test_process_backend_byte_identical_snapshot_on_off(self, artifacts):
        cases = QA_CASES[:4]
        warm = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        serial = [warm.distill(*case) for case in cases]

        # Snapshot ON: workers hydrate from the warm parent's state.
        with BatchDistiller(warm, workers=2, backend="process") as batch:
            hydrated = batch.distill_many(cases)
            info = batch.snapshot_info()
        # Snapshot OFF: cold workers, the pre-snapshot behaviour.
        cold_pipeline = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with BatchDistiller(
            cold_pipeline, workers=2, backend="process", snapshot=False
        ) as batch:
            cold = batch.distill_many(cases)

        for expected, on, off in zip(serial, hydrated, cold):
            assert on.evidence == expected.evidence == off.evidence
            assert on.scores == expected.scores == off.scores
            assert pickle.dumps(on.scores) == pickle.dumps(expected.scores)

        assert info is not None
        assert info["bytes"] > 0
        assert info["build_ms"] >= 0
        assert info["hydration"]["hits"] > 0
        for worker in info["workers"]:
            assert worker["snapshot"] is True
            assert worker["snapshot_load_ms"] >= 0

    def test_snapshot_off_reports_no_snapshot_info(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with BatchDistiller(
            gced, workers=2, backend="process", snapshot=False
        ) as batch:
            assert batch.snapshot_info() is None


# ------------------------------------------------------------- staleness


class TestStaleness:
    def test_distiller_rejects_stale_snapshot(self, artifacts):
        base = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        snap = base.build_snapshot()
        try:
            ablated = GCED(
                qa_model=artifacts.reader,
                artifacts=artifacts,
                config=GCEDConfig().ablate("clip"),
            )
            with pytest.raises(ValueError, match="stale pipeline snapshot"):
                BatchDistiller(
                    ablated, workers=2, backend="process", snapshot=snap
                )
        finally:
            snap.close(unlink=True)

    def test_adopt_snapshot_refuses_fingerprint_mismatch(self, artifacts):
        base = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        snap = base.build_snapshot(use_shared_memory=False)
        try:
            other = GCED(
                qa_model=artifacts.reader,
                artifacts=artifacts,
                config=GCEDConfig().ablate("r"),
            )
            assert other.adopt_snapshot(snap) is False
            assert other.profile.counters.get("snapshot_stale") == 1
            assert base.adopt_snapshot(snap) is True
        finally:
            snap.close(unlink=True)

    def test_pipeline_snapshot_caches_and_refreshes(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        first = gced.pipeline_snapshot()
        try:
            assert gced.pipeline_snapshot() is first
            second = gced.pipeline_snapshot(refresh=True)
            assert second is not first
            assert second.fingerprint == first.fingerprint
        finally:
            gced.pipeline_snapshot().close(unlink=True)


# ----------------------------------------------------- shared-memory hygiene


class TestSharedMemoryCleanup:
    def test_distiller_close_unlinks_owned_segment(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        batch = BatchDistiller(gced, workers=2, backend="process")
        name = batch._snapshot.shm_name
        assert name is not None and _segment_exists(name)
        batch.close()
        assert not _segment_exists(name)

    def test_segment_unlinked_even_after_worker_crash(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        batch = BatchDistiller(gced, workers=2, backend="process")
        name = batch._snapshot.shm_name
        assert name is not None
        with pytest.raises(BrokenProcessPool):
            batch.executor.map(_boom, [1, 2, 3])
        batch.close()
        assert not _segment_exists(name)

    def test_caller_owned_snapshot_survives_distiller_close(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        snap = gced.build_snapshot()
        try:
            name = snap.shm_name
            with BatchDistiller(
                gced, workers=2, backend="process", snapshot=snap
            ):
                pass
            # The distiller never owned it, so the segment is still live.
            assert name is None or _segment_exists(name)
        finally:
            snap.close(unlink=True)


# --------------------------------------------------------- executor lifecycle


class TestExecutorLifecycle:
    def test_map_after_close_raises(self):
        executor = ParallelExecutor(workers=2, backend="thread")
        executor.warmup()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(str, [1, 2, 3])
        with pytest.raises(RuntimeError, match="closed"):
            executor.warmup()
        executor.close()  # idempotent

    def test_warmup_report_collects_probe_results(self):
        executor = ParallelExecutor(workers=2, backend="process")
        try:
            report = executor.warmup(probe=os.getpid)
            assert report.seconds >= 0
            assert len(report.worker_infos) == 2
            assert executor.last_warmup is report
        finally:
            executor.close()


# ----------------------------------------------------- byte-accurate accounting


class TestCompiledAccounting:
    def test_lru_bytes_track_lazy_growth(self, artifacts):
        reader = artifacts.reader
        compiler = ContextCompiler()
        saved, reader.context_compiler = reader.context_compiler, compiler
        try:
            for question, _answer, context in QA_CASES:
                reader.predict(question, context)
        finally:
            reader.context_compiler = saved
        cache = compiler.cache
        measured = sum(
            estimate_compiled_bytes(value) for _key, value in cache.items()
        )
        # The invariant: accounted bytes equal the estimator applied to
        # the *current* (lazily grown) values, and respect the budget.
        assert cache._bytes == measured
        assert cache.max_bytes is None or cache._bytes <= cache.max_bytes

    def test_reaccount_evicts_on_growth(self):
        cache = LRUCache(
            capacity=8, size_estimator=lambda v: v["size"], max_bytes=100
        )
        small = {"size": 40}
        other = {"size": 40}
        cache.put("a", small)
        cache.put("b", other)
        assert cache._bytes == 80
        small["size"] = 90  # "a" grew in place
        assert cache.reaccount("a") == 90
        # Over budget now: the LRU entry that is not most-recent evicts.
        assert "b" in cache and "a" not in cache
        assert cache._bytes == 40
        assert cache.reaccount("missing") == 0

    def test_loader_read_through(self):
        cache = LRUCache(capacity=4)
        cache.loader = lambda key: key * 2 if key != "nope" else MISSING
        assert cache.get("ab") == "abab"
        assert cache.loader_hits == 1
        assert cache.get("ab") == "abab"  # now a real hit, loader not hit
        assert cache.loader_hits == 1
        assert cache.get("nope", "dflt") == "dflt"
        assert cache.loader_misses == 1


# ------------------------------------------------------- ASE sentence artifacts


class TestASECompiledSentences:
    def test_sentences_memoized_on_compiled_context(self, gced):
        question, answer, context = QA_CASES[0]
        compiled = gced.qa_model.compiled_context(context)
        first = compiled.sentences()
        assert compiled.sentences() is first
        result = gced.ase.extract(question, answer, context)
        assert result.sentences  # artifact-backed split produced output
        # The per-question sentence prediction batch is memoized too.
        assert question in compiled._sentence_preds
        calls = []
        preds = compiled.sentence_predictions(
            question, lambda: calls.append(1) or ()
        )
        assert calls == []  # factory not invoked on the memo hit
        assert len(preds) == len(first)

    def test_sentence_artifacts_ride_the_snapshot(self, gced):
        question, answer, context = QA_CASES[0]
        gced.ase.extract(question, answer, context)
        compiled = gced.qa_model.compiled_context(context)
        state = compiled.export_state()
        imported = CompiledContext.import_state(state)
        assert imported.sentences() == compiled.sentences()
        assert question in imported._sentence_preds


# ------------------------------------------------------- compiler hydration


class TestCompilerHydration:
    def test_attach_snapshot_hydrates_fresh_compiler(self, artifacts):
        reader = artifacts.reader
        warm = ContextCompiler()
        saved, reader.context_compiler = reader.context_compiler, warm
        try:
            question, _answer, context = QA_CASES[0]
            baseline = reader.predict(question, context)
            states = warm.export_states()

            fresh = ContextCompiler()
            fresh.attach_snapshot(
                lambda text: states.get(text, MISSING)
            )
            reader.context_compiler = fresh
            hydrated = reader.predict(question, context)
        finally:
            reader.context_compiler = saved
        assert hydrated == baseline
        assert fresh.cache.loader_hits == 1
        assert len(fresh.cache) == 1


# ----------------------------------------------------- snapshot generations


class TestSnapshotGeneration:
    def test_handle_carries_generation(self):
        snap = PipelineSnapshot(
            {"x": b"1"}, use_shared_memory=False, generation=3
        )
        attached = PipelineSnapshot.attach(snap.handle)
        assert attached.generation == 3
        snap.close(unlink=True)

    def test_pipeline_snapshot_refresh_bumps_generation(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        first = gced.pipeline_snapshot()
        try:
            assert first.generation == 0
            second = gced.pipeline_snapshot(refresh=True)
            assert second.generation == 1
        finally:
            gced.pipeline_snapshot().close(unlink=True)

    def test_readopting_same_generation_is_noop(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        snap = gced.build_snapshot(use_shared_memory=False, generation=1)
        try:
            assert gced.adopt_snapshot(snap) is True
            adopted = gced.profile.counters.get("snapshot_adopted")
            assert gced.adopt_snapshot(snap) is True
            assert gced.profile.counters.get("snapshot_readopt_noop") == 1
            assert gced.profile.counters.get("snapshot_adopted") == adopted
        finally:
            snap.close(unlink=True)

    def test_newer_generation_rebases_index_in_place(self, artifacts):
        from repro.retrieval import CorpusRetriever
        from repro.retrieval.mutable import MutableInvertedIndex

        main_index = MutableInvertedIndex(
            InvertedIndex.build(CORPUS, n_shards=2)
        )
        main = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            retriever=CorpusRetriever(main_index),
        )
        worker_index = MutableInvertedIndex(
            InvertedIndex.build(CORPUS, n_shards=2)
        )
        worker = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            retriever=CorpusRetriever(worker_index),
        )
        first = main.build_snapshot(use_shared_memory=False, generation=0)
        second = None
        try:
            assert worker.adopt_snapshot(first) is True
            new_text = "a freshly ingested paragraph about compaction"
            new_id = main_index.add(new_text)
            second = main.build_snapshot(use_shared_memory=False, generation=1)
            assert worker.adopt_snapshot(second) is True
            # Same object, new content: the pool's references stay valid.
            assert worker.retriever.index is worker_index
            assert worker_index.doc_text(new_id) == new_text
            assert worker.profile.counters.get("snapshot_refreshed") == 1
        finally:
            first.close(unlink=True)
            if second is not None:
                second.close(unlink=True)

    def test_refresh_snapshot_rehydrates_live_pool_in_place(self, artifacts):
        from repro.retrieval import CorpusRetriever
        from repro.retrieval.mutable import MutableInvertedIndex

        index = MutableInvertedIndex(InvertedIndex.build(CORPUS, n_shards=2))
        gced = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            retriever=CorpusRetriever(index),
        )
        with BatchDistiller(gced, workers=2, backend="process") as batch:
            before = batch.snapshot_info()
            batch.executor.warmup()  # ensure every worker process is up
            pool_pids = set(batch.executor._pool._processes)
            index.add("a brand new live document about snapshots")
            outcome = batch.refresh_snapshot()
            assert outcome is not None
            assert outcome["generation"] == before["generation"] + 1
            # Same pids: the pool was re-hydrated, not respawned.
            assert set(batch.executor._pool._processes) == pool_pids
            assert {w["pid"] for w in outcome["workers"]} <= pool_pids
            info = batch.snapshot_info()
            assert info["refreshes"] == 1
            assert info["generation"] == outcome["generation"]
            assert info["last_refresh"]["broadcast_ms"] >= 0

    def test_refresh_snapshot_noop_for_thread_backend(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with BatchDistiller(gced, workers=2, backend="thread") as batch:
            assert batch.refresh_snapshot() is None
