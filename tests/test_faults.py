"""Fault tolerance: injection plane, crash recovery, deadlines, degradation.

Unit tests cover the :mod:`repro.faults` DSL/plan/breaker machinery and
the scheduler's deadline handling against a stub distiller; the
``chaos``-marked tests run the real pipeline and genuinely ``kill -9``
pool workers mid-batch, asserting recovery is *byte-identical* — the
repo's determinism contract extends through crashes.
"""

from __future__ import annotations

import http.server
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import textwrap
import threading
import time

import pytest

from repro.core.batch import BatchDistiller
from repro.engine.snapshot import PipelineSnapshot
from repro.faults import (
    ENV_VAR,
    CircuitBreaker,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_point,
    injected,
    install_from_env,
    installed,
    uninstall,
)
from repro.retrieval import CorpusRetriever
from repro.service import (
    DeadlineExceededError,
    DistillService,
    MicroBatchScheduler,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    start_server,
)
from tests.conftest import CORPUS, QA_CASES

POISON = "__poison__"


class StubDistiller:
    """Distiller double: records batches, fails on poisoned contexts."""

    def __init__(self) -> None:
        self.batches: list[list[tuple[str, str, str]]] = []
        self._lock = threading.Lock()

    def _one(self, triple):
        if triple[2] == POISON:
            raise ValueError(f"poisoned triple {triple[0]!r}")
        return ("evidence-for",) + triple

    def distill_many(self, triples):
        with self._lock:
            self.batches.append(list(triples))
        return [self._one(t) for t in triples]

    def distill_one(self, question, answer, context):
        return self._one((question, answer, context))


# --------------------------------------------------------------------- DSL


class TestFaultSpecDSL:
    def test_round_trip(self):
        spec = FaultSpec(
            site="worker.distill",
            action="die",
            every=3,
            skip=1,
            times=2,
            match="Hastings",
            token="/tmp/tok",
        )
        assert FaultSpec.parse(spec.to_text()) == spec

    def test_plan_round_trip_with_seed(self):
        plan = FaultPlan(
            (
                FaultSpec(site="a", action="raise"),
                FaultSpec(site="b", action="delay", delay_ms=5.0),
            ),
            seed=7,
        )
        again = FaultPlan.parse(plan.to_env())
        assert again.seed == 7
        assert again.specs == plan.specs

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("no-action-here")
        with pytest.raises(ValueError):
            FaultSpec.parse("site:explode")
        with pytest.raises(ValueError):
            FaultSpec.parse("site:raise:bogus=1")
        with pytest.raises(ValueError):
            FaultSpec.parse("site:raise:times")
        with pytest.raises(ValueError):
            FaultSpec(site="s", action="raise", every=0)

    def test_install_from_env(self):
        try:
            assert install_from_env({}) is None
            assert installed() is None
            plan = install_from_env({ENV_VAR: "1"})
            assert plan is not None and plan.specs == ()
            plan = install_from_env({ENV_VAR: "x:raise:times=2;seed=3"})
            assert plan.seed == 3
            assert plan.specs[0].site == "x"
            assert installed() is plan
        finally:
            uninstall()

    def test_injected_restores_previous_plan(self):
        outer = FaultPlan(())
        with injected(outer):
            with injected(FaultPlan((FaultSpec(site="x"),))):
                assert installed().specs
            assert installed() is outer
        assert installed() is None


# ------------------------------------------------------------------ firing


class TestFaultPlanFiring:
    def test_disabled_path_is_noop(self):
        uninstall()
        fault_point("anything", detail="free")  # must not raise

    def test_every_skip_times(self):
        plan = FaultPlan(
            (FaultSpec(site="s", action="raise", every=2, skip=1, times=2),)
        )
        fired = []
        with injected(plan):
            for i in range(8):
                try:
                    fault_point("s")
                except FaultInjected:
                    fired.append(i)
        # Skip pass 0, then fire every 2nd matching pass, at most twice.
        assert fired == [1, 3]
        assert plan.fired("s") == 2
        assert plan.stats()["specs"][0]["passes"] == 8

    def test_match_restricts_to_detail_substring(self):
        plan = FaultPlan((FaultSpec(site="s", action="raise", match="bad"),))
        with injected(plan):
            fault_point("s", detail="all good")
            with pytest.raises(FaultInjected):
                fault_point("s", detail="a bad pass")

    def test_seeded_phase_is_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                (FaultSpec(site="s", action="raise", every=3),), seed=seed
            )
            pattern = []
            with injected(plan):
                for i in range(9):
                    try:
                        fault_point("s")
                    except FaultInjected:
                        pattern.append(i)
            return pattern

        assert firing_pattern(seed=11) == firing_pattern(seed=11)
        assert len(firing_pattern(seed=11)) == 3  # still every 3rd pass

    def test_delay_action_sleeps(self):
        plan = FaultPlan((FaultSpec(site="s", action="delay", delay_ms=20.0),))
        with injected(plan):
            started = time.perf_counter()
            fault_point("s")
            assert time.perf_counter() - started >= 0.015

    def test_token_is_a_cross_process_one_shot(self):
        with tempfile.NamedTemporaryFile(delete=False) as handle:
            token = handle.name
        try:
            plan = FaultPlan((FaultSpec(site="s", action="raise", token=token),))
            with injected(plan):
                with pytest.raises(FaultInjected):
                    fault_point("s")
                fault_point("s")  # token consumed: must not fire again
            assert not os.path.exists(token)
            # A fresh plan (a respawned worker re-reading the env) cannot
            # re-fire a consumed token either — its counters restart but
            # the token file is gone.
            fresh = FaultPlan((FaultSpec(site="s", action="raise", token=token),))
            with injected(fresh):
                fault_point("s")
            assert fresh.fired() == 0
        finally:
            if os.path.exists(token):
                os.unlink(token)

    def test_raise_message_carries_detail(self):
        plan = FaultPlan((FaultSpec(site="s", action="raise", message="boom"),))
        with injected(plan):
            with pytest.raises(FaultInjected, match="boom.*det41l"):
                fault_point("s", detail="det41l")


# ----------------------------------------------------------------- breaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=30.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.degraded
        assert breaker.stats()["rejected"] == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=30.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 31.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single trial
        assert not breaker.allow()  # trial in flight: everyone else waits
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=30.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 31.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["trips"] == 2
        assert not breaker.allow()

    def test_state_codes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        assert breaker.stats()["state_code"] == 0
        breaker.record_failure()
        assert breaker.stats()["state_code"] == 2


# --------------------------------------------------------------- deadlines


class TestSchedulerDeadlines:
    def test_expired_deadline_refused_at_submit(self):
        stub = StubDistiller()
        with MicroBatchScheduler(stub, max_batch_size=4) as sched:
            with pytest.raises(DeadlineExceededError):
                sched.submit("q", "a", "c", deadline=time.monotonic() - 0.001)
            assert sched.stats().deadline_expired == 1
        assert stub.batches == []  # refused before any engine work

    def test_queued_request_expires_without_engine_work(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=8, max_wait_ms=60
        ) as sched:
            request = sched.submit(
                "q", "a", "c", deadline=time.monotonic() + 0.005
            )
            with pytest.raises(DeadlineExceededError) as excinfo:
                request.result(timeout=5)
            assert "in the scheduler queue" in str(excinfo.value)
            stats = sched.stats()
            assert stats.deadline_expired == 1
            assert stats.failed == 1
        assert stub.batches == []  # culled before the distiller saw it

    def test_live_requests_survive_an_expired_batchmate(self):
        stub = StubDistiller()
        with MicroBatchScheduler(
            stub, max_batch_size=8, max_wait_ms=60
        ) as sched:
            doomed = sched.submit(
                "q-doomed", "a", "c1", deadline=time.monotonic() + 0.005
            )
            live = sched.submit("q-live", "a", "c2")
            assert live.result(timeout=5) == ("evidence-for", "q-live", "a", "c2")
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5)
        assert stub.batches == [[("q-live", "a", "c2")]]

    def test_submit_many_shares_one_deadline(self):
        stub = StubDistiller()
        with MicroBatchScheduler(stub, max_batch_size=4) as sched:
            with pytest.raises(DeadlineExceededError):
                sched.submit_many(
                    [("q1", "a", "c1"), ("q2", "a", "c2")],
                    deadline=time.monotonic() - 0.001,
                )
            assert sched.stats().deadline_expired == 1


# ---------------------------------------------------- retrieval degradation


class TestRetrievalDegradation:
    def test_breaker_trips_to_reduced_shards_and_recovers(self):
        retriever = CorpusRetriever.build(CORPUS, n_shards=2)
        clock = FakeClock()
        retriever.breaker.clock = clock
        retriever.breaker.failure_threshold = 2
        query = "Who led the Norman conquest of England?"
        healthy = retriever.retrieve(query, k=2)
        assert healthy and not retriever.degraded

        plan = FaultPlan(
            (FaultSpec(site="retrieval.search", action="raise", times=2),)
        )
        with injected(plan):
            first = retriever.retrieve(query, k=2)   # failure 1 -> reduced
            second = retriever.retrieve(query, k=2)  # failure 2 -> trips open
        assert plan.fired("retrieval.search") == 2
        assert retriever.degraded
        assert retriever.breaker.state == "open"
        # Degraded rankings are deterministic over the kept shard subset,
        # and served without touching the scorer while the breaker is open.
        third = retriever.retrieve(query, k=2)
        assert first == second == third
        assert all(hit.text for hit in third)
        info = retriever.recovery_info()
        assert info["degraded"] is True
        assert info["degraded_searches"] == 3
        assert info["reduced_shards"] == 1 and info["n_shards"] == 2

        # Cooldown elapses -> half-open trial succeeds -> fully closed,
        # and the ranking is the healthy one again.
        clock.now += retriever.breaker.reset_after_s + 1.0
        assert retriever.retrieve(query, k=2) == healthy
        assert retriever.breaker.state == "closed"
        assert not retriever.degraded


# -------------------------------------------------------- snapshot plane


class TestSnapshotFaults:
    def test_attach_fault_site(self):
        snap = PipelineSnapshot({"a": b"x"}, use_shared_memory=False)
        try:
            plan = FaultPlan(
                (FaultSpec(site="snapshot.attach", action="raise", times=1),)
            )
            with injected(plan):
                with pytest.raises(FaultInjected):
                    PipelineSnapshot.attach(snap.handle)
                # One-shot: the retry (a respawned worker) succeeds.
                again = PipelineSnapshot.attach(snap.handle)
            assert again.section("a") == b"x"
        finally:
            snap.close(unlink=True)

    @pytest.mark.chaos
    def test_sigterm_unlinks_owned_segment(self, tmp_path):
        """A coordinator dying to SIGTERM must not leak /dev/shm segments."""
        script = textwrap.dedent(
            """
            import time
            from repro.engine.snapshot import PipelineSnapshot
            snap = PipelineSnapshot({"a": b"x" * 4096})
            print(snap.shm_name or "", flush=True)
            time.sleep(60)
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            name = proc.stdout.readline().strip()
            if not name:
                pytest.skip("shared memory unavailable on this platform")
            segment = f"/dev/shm/{name}"
            if not os.path.exists(segment):
                pytest.skip("/dev/shm not visible on this platform")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
            assert not os.path.exists(segment), "segment leaked past SIGTERM"
            # The leak guard chains to the default action: the process
            # must still report a signal death, not a clean exit.
            assert proc.returncode != 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    @pytest.mark.chaos
    def test_forked_child_sigterm_does_not_unlink(self):
        """Ownership is per-PID: a fork-inherited copy of the registry in a
        dying worker must NOT unlink the coordinator's live segment (the
        exact failure mode of a broken process pool being torn down)."""
        script = textwrap.dedent(
            """
            import os, signal, sys, time
            from repro.engine.snapshot import PipelineSnapshot
            snap = PipelineSnapshot({"a": b"x" * 4096})
            if snap.shm_name is None:
                print("SKIP", flush=True)
                sys.exit(0)
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Inherits _OWNED + the SIGTERM handler; tell the parent
                # we are in steady state, then wait to be killed.
                os.write(write_fd, b"x")
                time.sleep(60)
                os._exit(0)
            os.read(read_fd, 1)
            os.kill(pid, signal.SIGTERM)
            os.waitpid(pid, 0)
            alive = os.path.exists(f"/dev/shm/{snap.shm_name}")
            print("ALIVE" if alive else "GONE", flush=True)
            snap.close(unlink=True)
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=30,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        verdict = result.stdout.strip().splitlines()[-1] if result.stdout else ""
        if verdict == "SKIP":
            pytest.skip("shared memory unavailable on this platform")
        assert verdict == "ALIVE", (
            "a SIGTERMed forked child unlinked the parent's live segment: "
            f"stdout={result.stdout!r} stderr={result.stderr!r}"
        )


# ---------------------------------------------------------- crash recovery


def _reference_evidence(gced, triples):
    return [gced.distill(*t).evidence for t in triples]


@pytest.mark.chaos
class TestCrashRecovery:
    def test_worker_sigkill_mid_batch_recovers_byte_identical(self, gced):
        triples = list(QA_CASES)
        reference = _reference_evidence(gced, triples)
        with tempfile.NamedTemporaryFile(delete=False) as handle:
            token = handle.name
        os.environ[ENV_VAR] = f"worker.distill:die:times=1,token={token}"
        try:
            with BatchDistiller(gced, workers=2, backend="process") as batch:
                results = batch.distill_many(triples)
                recovery = batch.executor.recovery_stats()
            assert [r.evidence for r in results] == reference
            assert recovery["pool_breaks"] == 1
            assert recovery["chunk_retries"] >= 1
            assert recovery["last_recovery_ms"] > 0.0
        finally:
            os.environ.pop(ENV_VAR, None)
            uninstall()
            if os.path.exists(token):
                os.unlink(token)

    def test_unrecovered_pool_degrades_to_serial(self, gced):
        triples = list(QA_CASES[:3])
        reference = _reference_evidence(gced, triples)
        # No token and no times cap: every (re)spawned worker dies on its
        # first job, so the pool can never recover and the breaker must
        # route the batch to the serial in-coordinator fallback.
        os.environ[ENV_VAR] = "worker.distill:die"
        try:
            with BatchDistiller(
                gced,
                workers=2,
                backend="process",
                breaker_failures=1,
                breaker_reset_s=3600.0,
            ) as batch:
                results = batch.distill_many(triples)
                assert [r.evidence for r in results] == reference
                assert batch.degraded
                info = batch.recovery_info()
                assert info["degraded_batches"] == 1
                assert info["breaker"]["state"] == "open"
                assert info["executor"]["pool_breaks"] == 2

                # While open, later batches bypass the pool entirely:
                # pool_breaks stays put and the degraded counter moves.
                more = [("What changed English history?", "The battle", CORPUS[2])]
                again = batch.distill_many(more)
                assert [r.evidence for r in again] == _reference_evidence(
                    gced, more
                )
                info = batch.recovery_info()
                assert info["degraded_batches"] == 2
                assert info["executor"]["pool_breaks"] == 2
        finally:
            os.environ.pop(ENV_VAR, None)
            uninstall()

    def test_poison_item_is_quarantined_in_degraded_batch(self, gced):
        class PoisonableGCED:
            """Delegates to the real pipeline, fails one marked context."""

            def __init__(self, inner):
                self._inner = inner

            def distill(self, question, answer, context):
                if context == POISON:
                    raise ValueError("poisoned")
                return self._inner.distill(question, answer, context)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        good = list(QA_CASES[:2])
        reference = _reference_evidence(gced, good)
        with BatchDistiller(gced, workers=2, backend="process") as batch:
            # Trip the pool breaker open so _execute takes the degraded
            # serial path, then poison one item in the coordinator.
            for _ in range(batch.pool_breaker.failure_threshold):
                batch.pool_breaker.record_failure()
            batch.gced = PoisonableGCED(gced)
            with MicroBatchScheduler(
                batch, max_batch_size=3, max_wait_ms=10_000
            ) as sched:
                requests = sched.submit_many(
                    good + [("q-poison", "a", POISON)]
                )
                assert [
                    r.result(timeout=30).evidence for r in requests[:2]
                ] == reference
                with pytest.raises(ValueError, match="poisoned"):
                    requests[2].result(timeout=30)
            # The healthy batch-mates were memoized before the poison
            # error propagated: the per-request fallback served them from
            # the memo instead of recomputing.
            assert batch.stats().n_cache_hits >= 2
            assert batch.recovery_info()["degraded_batches"] == 1


# ----------------------------------------------------------- HTTP serving


@pytest.fixture(scope="module")
def served(gced):
    service = DistillService(
        gced,
        max_batch_size=4,
        max_wait_ms=10,
        retriever=CorpusRetriever.build(CORPUS, n_shards=2),
    )
    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30)
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


@pytest.mark.chaos
class TestServingFaults:
    def test_expired_deadline_answers_504_with_parseable_body(self, served):
        service, client = served
        before = service.scheduler.stats().deadline_expired
        question, answer, context = QA_CASES[0]
        with pytest.raises(ServiceError) as excinfo:
            client.distill(question, answer, context, deadline_ms=0)
        assert excinfo.value.status == 504
        assert isinstance(excinfo.value.payload, dict)
        assert "deadline" in excinfo.value.payload["error"]
        assert service.scheduler.stats().deadline_expired == before + 1

    def test_healthz_and_responses_surface_degradation(self, served):
        service, client = served
        assert client.healthz()["status"] == "ok"
        question, answer, _context = QA_CASES[0]
        healthy = client.ask(question, answer, k=2)
        assert "degraded" not in healthy  # byte-identical healthy path

        breaker = service.retriever.breaker
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        try:
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["checks"]["retrieval_breaker"] == "open"
            degraded = client.ask(question, answer, k=2)
            assert degraded["degraded"] is True
            stats = client.stats()
            assert stats["faults"]["degraded"] is True
            assert stats["faults"]["retrieval"]["breaker"]["state"] == "open"
            metrics = client.metrics_text()
            assert 'gced_breaker_state{breaker="retrieval"} 2' in metrics
            assert "gced_degraded 1" in metrics
        finally:
            breaker.record_success()
        assert client.healthz()["status"] == "ok"
        assert "degraded" not in client.ask(question, answer, k=2)

    def test_http_edge_fault_answers_500_not_a_crash(self, served):
        _service, client = served
        plan = FaultPlan(
            (FaultSpec(site="http.request", action="raise", times=1),)
        )
        with injected(plan):
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 500
            assert "FaultInjected" in excinfo.value.payload["error"]
        assert client.healthz()["status"] == "ok"  # server survived

    def test_errors_echo_the_trace_id(self, served):
        _service, client = served
        traced = ServiceClient(
            client.base_url, timeout=30, trace_id="cafebabecafebabe"
        )
        with pytest.raises(ServiceError) as excinfo:
            traced.distill("", "", "")  # invalid input -> 400
        assert excinfo.value.status == 400
        assert excinfo.value.trace_id == "cafebabecafebabe"


# ----------------------------------------------------------- client faults


class _StubHandler(http.server.BaseHTTPRequestHandler):
    """Scripted responses for client error-path tests."""

    behaviors: list[str] = []
    calls = 0

    def _respond(self):
        cls = type(self)
        behavior = cls.behaviors[min(cls.calls, len(cls.behaviors) - 1)]
        cls.calls += 1
        if behavior == "ok":
            body = json.dumps({"ok": True}).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif behavior == "shed":
            body = json.dumps(
                {"error": "shed", "retry_after_seconds": 0.01}
            ).encode()
            self.send_response(429)
            self.send_header("Retry-After", "1")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif behavior == "garbage":
            body = b'{"truncated": '
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif behavior == "stall":
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", "100")
            self.end_headers()
            self.wfile.write(b'{"partial": ')  # then never finish
            time.sleep(2.0)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, format, *args):
        pass


@pytest.fixture
def stub_server():
    """A scripted HTTP server; yields a factory binding behaviors to a URL."""
    servers = []

    def make(behaviors):
        handler = type(
            "Handler", (_StubHandler,), {"behaviors": behaviors, "calls": 0}
        )
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        host, port = server.server_address[:2]
        return f"http://{host}:{port}", handler

    yield make
    for server in servers:
        server.shutdown()
        server.server_close()


class TestClientErrorPaths:
    def test_connection_refused_is_status_zero(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=1)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert "transport error" in excinfo.value.payload["error"]

    def test_malformed_json_body_is_status_zero(self, stub_server):
        url, _handler = stub_server(["garbage"])
        client = ServiceClient(url, timeout=5)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert "malformed response body" in excinfo.value.payload["error"]

    def test_socket_timeout_mid_body_is_status_zero(self, stub_server):
        url, _handler = stub_server(["stall"])
        client = ServiceClient(url, timeout=0.3)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert "transport error" in excinfo.value.payload["error"]

    def test_retry_policy_recovers_from_shed(self, stub_server):
        url, handler = stub_server(["shed", "shed", "ok"])
        sleeps: list[float] = []
        policy = RetryPolicy(retries=3, base_delay_s=0.001, max_delay_s=0.05)
        client = ServiceClient(
            url,
            timeout=5,
            client_id="tester",
            retry=policy,
            sleep=sleeps.append,
        )
        assert client.healthz() == {"ok": True}
        assert handler.calls == 3
        # The schedule is deterministic: body's precise retry_after_seconds
        # (0.01) beats the computed base both times, capped by max_delay_s.
        assert sleeps == [
            policy.delay(0, client_id="tester", retry_after=0.01),
            policy.delay(1, client_id="tester", retry_after=0.01),
        ]

    def test_no_retry_without_a_policy(self, stub_server):
        url, handler = stub_server(["shed", "ok"])
        client = ServiceClient(url, timeout=5)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 0.01  # precise body value
        assert handler.calls == 1

    def test_retries_exhausted_reraises(self, stub_server):
        url, handler = stub_server(["shed"])
        sleeps: list[float] = []
        client = ServiceClient(
            url,
            timeout=5,
            retry=RetryPolicy(retries=2, base_delay_s=0.001),
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 429
        assert handler.calls == 3  # 1 + 2 retries
        assert len(sleeps) == 2


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        policy = RetryPolicy()
        assert policy.delay(0, client_id="a") == policy.delay(0, client_id="a")
        assert policy.delay(0, client_id="a") != policy.delay(0, client_id="b")
        base = policy.base_delay_s
        assert base <= policy.delay(0, client_id="a") <= base * 1.25

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            retries=8, base_delay_s=0.1, max_delay_s=0.5, backoff=2.0
        )
        delays = [policy.delay(i) for i in range(6)]
        assert delays == sorted(delays)
        assert all(d <= policy.max_delay_s for d in delays)

    def test_retry_after_hint_raises_the_delay(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=2.0)
        assert policy.delay(0, retry_after=1.5) == 1.5
        # ... but never past the cap.
        assert policy.delay(0, retry_after=10.0) == 2.0

    def test_should_retry_classification(self):
        policy = RetryPolicy()
        assert policy.should_retry(ServiceError(429, {}))
        assert policy.should_retry(ServiceError(503, {}))
        assert policy.should_retry(ServiceError(0, {}))
        assert not policy.should_retry(ServiceError(400, {}))
        assert not policy.should_retry(ServiceError(500, {}))
        strict = RetryPolicy(retry_transport=False)
        assert not strict.should_retry(ServiceError(0, {}))
