"""Unit tests for the multi-head attention substrate."""

import numpy as np
import pytest

from repro.attention import MultiHeadAttention
from repro.lm import CooccurrenceEmbeddings

SENTS = [
    ["denver", "broncos", "won", "the", "title"],
    ["the", "broncos", "defeated", "the", "panthers"],
    ["denver", "celebrated", "the", "title"],
] * 5


@pytest.fixture(scope="module")
def attention():
    emb = CooccurrenceEmbeddings(dim=16, seed=1).fit(SENTS)
    return MultiHeadAttention(emb, heads=4, d_k=8, seed=2)


class TestMultiHeadAttention:
    def test_rows_sum_to_one(self, attention):
        matrix = attention.attention_matrix(["denver", "broncos", "won"])
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_shape(self, attention):
        tokens = ["a", "b", "c", "d"]
        assert attention.attention_matrix(tokens).shape == (4, 4)
        assert attention.head_attention(tokens).shape == (4, 4, 4)

    def test_empty_tokens(self, attention):
        assert attention.attention_matrix([]).shape == (0, 0)

    def test_edge_weights_symmetric(self, attention):
        weights = attention.edge_weights(["denver", "broncos", "won", "title"])
        assert np.allclose(weights, weights.T)

    def test_weights_nonnegative(self, attention):
        weights = attention.edge_weights(["denver", "broncos", "won"])
        assert (weights >= 0).all()

    def test_deterministic_given_seed(self):
        emb = CooccurrenceEmbeddings(dim=16, seed=1).fit(SENTS)
        a1 = MultiHeadAttention(emb, heads=4, d_k=8, seed=7)
        a2 = MultiHeadAttention(emb, heads=4, d_k=8, seed=7)
        tokens = ["denver", "broncos", "won"]
        assert np.allclose(a1.attention_matrix(tokens), a2.attention_matrix(tokens))

    def test_different_seeds_differ(self):
        emb = CooccurrenceEmbeddings(dim=16, seed=1).fit(SENTS)
        a1 = MultiHeadAttention(emb, heads=4, d_k=8, seed=7)
        a2 = MultiHeadAttention(emb, heads=4, d_k=8, seed=8)
        tokens = ["denver", "broncos", "won"]
        assert not np.allclose(
            a1.attention_matrix(tokens), a2.attention_matrix(tokens)
        )

    def test_encode_shape(self, attention):
        out = attention.encode(["denver", "broncos"])
        assert out.shape == (2, attention.embeddings.dim)

    def test_invalid_heads(self):
        emb = CooccurrenceEmbeddings(dim=8, seed=0).fit(SENTS)
        with pytest.raises(ValueError):
            MultiHeadAttention(emb, heads=0)

    def test_related_tokens_attend_more(self, attention):
        # "denver" and "broncos" co-occur; "denver" and an unknown word
        # share no signal beyond the unk mean vector.
        matrix = attention.attention_matrix(["denver", "broncos", "qqqq"])
        assert matrix[0, 1] > matrix[0, 2] * 0.5  # weak but directional
