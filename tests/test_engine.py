"""Tests for the staged execution engine: stages, registry, executors,
instrumentation, and the executor-backed batch distiller."""

from __future__ import annotations

import pickle

import pytest

from repro.core import BatchDistiller, GCEDConfig, stage_plan
from repro.core.pipeline import GCED
from repro.engine import (
    ParallelExecutor,
    PipelineProfile,
    SerialExecutor,
    StageRegistry,
    build_executor,
    default_registry,
)
from repro.engine.instrumentation import CacheStats
from repro.utils.cache import LRUCache, MISSING
from tests.conftest import QA_CASES


# ------------------------------------------------------------- stage plans
class TestStagePlan:
    def test_full_plan(self):
        assert stage_plan(GCEDConfig()) == (
            "ase", "tokenize", "qws", "wsptc", "efc", "oec", "finalize"
        )

    @pytest.mark.parametrize(
        "component, substituted, replaced",
        [
            ("ase", "ase-passthrough", "ase"),
            ("qws", "qws-passthrough", "qws"),
            ("grow", "oec-no-grow", "oec"),
            ("clip", "oec-no-clip", "oec"),
        ],
    )
    def test_ablations_substitute_stages(self, component, substituted, replaced):
        plan = stage_plan(GCEDConfig().ablate(component))
        assert substituted in plan
        assert replaced not in plan
        assert len(plan) == 7

    def test_grow_and_clip_both_off(self):
        config = GCEDConfig(use_grow=False, use_clip=False)
        assert "oec-minimal" in stage_plan(config)

    def test_all_plan_stages_registered(self):
        for config in (GCEDConfig(), GCEDConfig().ablate("ase"),
                       GCEDConfig().ablate("qws"), GCEDConfig().ablate("grow"),
                       GCEDConfig().ablate("clip")):
            for name in stage_plan(config):
                assert name in default_registry

    def test_gced_resolves_plan(self, gced):
        assert gced.plan == stage_plan(gced.config)
        assert [s.name for s in gced.stages] == list(gced.plan)


# --------------------------------------------------------------- registry
class TestStageRegistry:
    def test_register_and_create(self):
        registry = StageRegistry()

        @registry.register("noop")
        class Noop:
            name = "noop"

            def run(self, ctx):
                pass

        assert "noop" in registry
        assert registry.create("noop").name == "noop"

    def test_duplicate_name_rejected(self):
        registry = StageRegistry()
        registry.register("x", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: None)

    def test_unknown_stage(self):
        with pytest.raises(KeyError, match="unknown stage"):
            StageRegistry().create("nope")

    def test_custom_stage_plugs_into_pipeline(self, artifacts):
        registry = default_registry.clone()

        @registry.register("annotate")
        class Annotate:
            name = "annotate"

            def run(self, ctx):
                ctx.extras["n_aos_tokens"] = len(ctx.aos_tokens)

        config = GCEDConfig()
        plan = stage_plan(config)
        plan = plan[:-1] + ("annotate",) + plan[-1:]
        gced = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            registry=registry,
            plan=plan,
        )
        question, answer, context = QA_CASES[0]
        ctx = gced.make_context(question, answer, context)
        result = gced.run_stages(ctx)
        assert result.evidence
        assert ctx.extras["n_aos_tokens"] == len(result.aos_tokens)
        assert gced.profile.stages["annotate"].calls == 1


# --------------------------------------------------------------- executors
class TestExecutors:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, range(7)) == [
            0, 2, 4, 6, 8, 10, 12
        ]

    def test_parallel_preserves_order_with_grouping(self):
        with ParallelExecutor(workers=3) as executor:
            items = list(range(40))
            out = executor.map(lambda x: x * x, items, key=lambda x: x % 5)
        assert out == [x * x for x in items]

    def test_serial_and_parallel_agree(self):
        items = ["b", "a", "c", "a", "b"] * 4
        serial = SerialExecutor().map(str.upper, items, key=lambda s: s)
        with ParallelExecutor(workers=4) as executor:
            parallel = executor.map(str.upper, items, key=lambda s: s)
        assert serial == parallel

    def test_empty_input(self):
        with ParallelExecutor(workers=2) as executor:
            assert executor.map(lambda x: x, []) == []

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(RuntimeError, match="boom"):
                executor.map(boom, [1, 2, 3])

    def test_build_executor(self):
        assert isinstance(build_executor(1), SerialExecutor)
        assert isinstance(build_executor(3), ParallelExecutor)
        assert build_executor(3).workers == 3
        assert build_executor(0).workers >= 1

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelExecutor(workers=2, backend="carrier-pigeon")

    def test_prebuilt_process_executor_rejected(self, gced):
        # A caller-supplied process pool has no pipeline initializer, so
        # the distiller must refuse it up front rather than fail to
        # pickle itself at the first distill_many.
        with ParallelExecutor(workers=2, backend="process") as executor:
            with pytest.raises(ValueError, match="initializer"):
                BatchDistiller(gced, executor=executor)


# --------------------------------------------------------- LRU cache fixes
class TestCacheSentinel:
    def test_cached_none_is_a_hit(self):
        cache = LRUCache(capacity=4)
        cache.put("k", None)
        assert cache.get("k", MISSING) is None
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_key_is_a_miss(self):
        cache = LRUCache(capacity=4)
        assert cache.get("k", MISSING) is MISSING
        assert cache.hits == 0 and cache.misses == 1

    def test_missing_survives_pickle(self):
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING

    def test_cache_survives_pickle(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("a") == 1
        assert clone.hits == 2


# ------------------------------------------------- empty-forest fallback
class TestEmptyForestFallback:
    CONTEXT = (
        "The cat sat on the mat. A dog barked at the moon. "
        "Rain fell all night long. The old clock ticked away."
    )

    def test_fallback_to_sentence_evidence(self, gced):
        # No question word matches the context and the answer string is
        # absent, so EFC finds no seed nodes: the pipeline must fall back
        # to the AOS text instead of returning nothing.
        result = gced.distill("Did zylophant quorble?", "plugh", self.CONTEXT)
        assert result.forest_size == 0
        assert result.evidence == result.ase.text
        assert result.evidence
        assert result.grow_trace == [] and result.clip_trace == []
        assert result.evidence_nodes == set()
        assert result.aos_tokens

    def test_fallback_reduction_counts_dropped_sentences(self, gced):
        result = gced.distill("Did zylophant quorble?", "plugh", self.CONTEXT)
        # ASE caps the subset at max_answer_sentences=3 of 4 sentences.
        assert 0.0 < result.reduction < 1.0

    def test_fallback_halts_at_efc_in_profile(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        gced.distill("Did zylophant quorble?", "plugh", self.CONTEXT)
        assert gced.profile.stages["efc"].halts == 1
        assert "oec" not in gced.profile.stages


# ------------------------------------------------------ batch + executors
class TestBatchDistillerParallel:
    def _triples(self, n=6):
        return [(q, a, c) for q, a, c in QA_CASES[:n]]

    def test_parallel_matches_serial(self, gced):
        triples = self._triples()
        serial = BatchDistiller(gced).distill_many(triples)
        with BatchDistiller(gced, workers=3, backend="thread") as batch:
            parallel = batch.distill_many(triples)
        assert [r.evidence for r in parallel] == [r.evidence for r in serial]
        assert [r.scores for r in parallel] == [r.scores for r in serial]
        assert [r.reduction for r in parallel] == [r.reduction for r in serial]

    def test_parallel_preserves_input_order(self, gced):
        triples = self._triples()
        expected = [gced.distill(q, a, c).evidence for q, a, c in triples]
        with BatchDistiller(gced, workers=4) as batch:
            results = batch.distill_many(triples)
        assert [r.evidence for r in results] == expected

    def test_parallel_cache_hit_accounting(self, gced):
        triples = self._triples(4) * 3
        with BatchDistiller(gced, workers=3) as batch:
            batch.distill_many(triples)
            stats = batch.stats()
        assert stats.n_distilled == 4
        assert stats.n_cache_hits == 8

    def test_repeat_batch_hits_memo(self, gced):
        triples = self._triples(3)
        batch = BatchDistiller(gced, workers=2)
        with batch:
            batch.distill_many(triples)
            batch.distill_many(triples)
            stats = batch.stats()
        assert stats.n_distilled == 3
        assert stats.n_cache_hits == 3
        # The shared results memo must account the repeat batch as hits:
        # its key is pure (question, answer, context) content, so reruns
        # of the same triples land on it.
        results_cache = next(
            c for c in stats.cache_stats if c.name == "results"
        )
        assert results_cache.hits == 3
        assert results_cache.misses == 3

    def test_process_backend_matches_serial(self, gced, artifacts):
        triples = self._triples(3)
        serial = BatchDistiller(gced).distill_many(triples)
        fresh = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with BatchDistiller(fresh, workers=2, backend="process") as batch:
            parallel = batch.distill_many(triples)
            stats = batch.stats()
        assert [r.evidence for r in parallel] == [r.evidence for r in serial]
        assert [r.scores for r in parallel] == [r.scores for r in serial]
        assert stats.n_distilled == 3
        # Worker profiles travel back: stage timings exist despite the
        # work having run in other processes.
        assert stats.profile.stages["oec"].calls == 3

    def test_workers_zero_means_per_cpu(self, gced):
        # workers=0 must resolve to the CPU count *before* the process
        # initializer guard, so worker processes get a pipeline installed.
        triples = self._triples(2)
        serial = BatchDistiller(gced).distill_many(triples)
        with BatchDistiller(gced, workers=0, backend="process") as batch:
            results = batch.distill_many(triples)
        assert [r.evidence for r in results] == [r.evidence for r in serial]

    def test_duplicate_accounting_on_results_cache(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        batch = BatchDistiller(gced)
        batch.distill_many([self._triples(1)[0]] * 3)
        stats = batch.stats()
        results_cache = next(
            c for c in stats.cache_stats if c.name == "results"
        )
        assert (results_cache.hits, results_cache.misses) == (2, 1)
        assert stats.n_distilled == 1 and stats.n_cache_hits == 2

    def test_stats_surface_shared_caches(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        batch = BatchDistiller(gced)
        batch.distill_many(self._triples(4))
        stats = batch.stats()
        names = {c.name for c in stats.cache_stats}
        assert {
            "parse",
            "informativeness",
            "readability",
            "results",
            "clip_scores",
        } <= names
        # The incremental engine's node-set cache must record the clip
        # search's scoring traffic (one lookup per candidate evidence).
        clip_cache = next(
            c for c in stats.cache_stats if c.name == "clip_scores"
        )
        assert clip_cache.lookups > 0
        summary = stats.summary()
        assert "shared caches" in summary
        assert "informativeness" in summary


# --------------------------------------------------------- instrumentation
class TestInstrumentation:
    def test_profile_records_stage_sequence(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        question, answer, context = QA_CASES[0]
        gced.distill(question, answer, context)
        assert list(gced.profile.stages) == list(gced.plan)
        assert all(t.calls == 1 for t in gced.profile.stages.values())
        assert gced.profile.counters["contexts"] == 1

    def test_finalize_is_not_an_early_halt(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        question, answer, context = QA_CASES[0]
        gced.distill(question, answer, context)
        assert gced.profile.stages["finalize"].halts == 0

    def test_merge_adds_timings_and_caches(self):
        a, b = PipelineProfile(), PipelineProfile()
        a.record_stage("ase", 0.5)
        b.record_stage("ase", 0.25)
        b.record_stage("oec", 1.0, halted=True)
        a.record_cache(CacheStats("parse", hits=3, misses=1, size=4))
        b.record_cache(CacheStats("parse", hits=1, misses=1, size=2))
        a.merge(b)
        assert a.stages["ase"].calls == 2
        assert a.stages["ase"].seconds == pytest.approx(0.75)
        assert a.stages["oec"].halts == 1
        assert a.caches["parse"].hits == 4
        assert a.caches["parse"].misses == 2

    def test_report_lists_stages_and_caches(self):
        profile = PipelineProfile()
        profile.record_stage("ase", 0.1)
        profile.record_cache(CacheStats("parse", hits=9, misses=1, size=10))
        report = profile.report()
        assert "ase" in report
        assert "90%" in report

    def test_profile_pickles_without_lock(self):
        profile = PipelineProfile()
        profile.record_stage("ase", 0.1)
        clone = pickle.loads(pickle.dumps(profile))
        clone.record_stage("ase", 0.1)
        assert clone.stages["ase"].calls == 2

    def test_unanswerable_counted(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        question, _answer, context = QA_CASES[0]
        result = gced.distill(question, "   ", context)
        assert result.evidence == ""
        assert gced.profile.counters["unanswerable"] == 1
