"""Unit tests for the n-gram LM and co-occurrence embeddings."""

import numpy as np
import pytest

from repro.lm import CooccurrenceEmbeddings, NGramLanguageModel

SENTS = [
    ["the", "broncos", "defeated", "the", "panthers"],
    ["the", "panthers", "lost", "the", "game"],
    ["denver", "broncos", "won", "the", "super", "bowl", "title"],
    ["the", "super", "bowl", "title", "went", "to", "denver"],
] * 4


class TestNGramLM:
    @pytest.fixture(scope="class")
    def lm(self):
        return NGramLanguageModel().fit(SENTS)

    def test_probability_positive(self, lm):
        assert lm.probability("broncos", "the") > 0

    def test_probabilities_not_above_one(self, lm):
        assert lm.probability("the") <= 1.0

    def test_fluent_beats_shuffled(self, lm):
        fluent = ["the", "broncos", "defeated", "the", "panthers"]
        shuffled = ["panthers", "the", "the", "defeated", "broncos"]
        assert lm.perplexity(fluent) < lm.perplexity(shuffled)

    def test_in_domain_beats_unknown(self, lm):
        assert lm.perplexity(["the", "game"]) < lm.perplexity(["zz", "qq"])

    def test_empty_sequence_convention(self, lm):
        assert lm.perplexity([]) == float(lm.vocab_size)

    def test_unknown_words_finite(self, lm):
        assert np.isfinite(lm.perplexity(["totally", "unknown", "words"]))

    def test_case_insensitive(self, lm):
        assert lm.perplexity(["THE", "GAME"]) == lm.perplexity(["the", "game"])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NGramLanguageModel().probability("x")

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            NGramLanguageModel(order=4)

    def test_invalid_lambdas(self):
        with pytest.raises(ValueError):
            NGramLanguageModel(lambdas=(0.5, 0.5, 0.5))

    def test_bigram_order_supported(self):
        lm2 = NGramLanguageModel(order=2).fit(SENTS)
        assert np.isfinite(lm2.perplexity(["the", "game"]))


class TestEmbeddings:
    @pytest.fixture(scope="class")
    def emb(self):
        return CooccurrenceEmbeddings(dim=16, seed=1).fit(SENTS)

    def test_vector_shape(self, emb):
        assert emb.vector("broncos").shape == (16,)

    def test_unknown_gets_mean_vector(self, emb):
        unknown = emb.vector("qqqq")
        assert unknown.shape == (16,)

    def test_matrix_stacking(self, emb):
        matrix = emb.matrix(["the", "broncos"])
        assert matrix.shape == (2, 16)

    def test_empty_matrix(self, emb):
        assert emb.matrix([]).shape == (0, 16)

    def test_similarity_bounds(self, emb):
        sim = emb.similarity("broncos", "panthers")
        assert -1.0001 <= sim <= 1.0001

    def test_self_similarity_is_one(self, emb):
        assert emb.similarity("broncos", "broncos") == pytest.approx(1.0)

    def test_deterministic(self):
        e1 = CooccurrenceEmbeddings(dim=8, seed=3).fit(SENTS)
        e2 = CooccurrenceEmbeddings(dim=8, seed=3).fit(SENTS)
        assert np.allclose(e1.vector("denver"), e2.vector("denver"))

    def test_most_similar_excludes_self(self, emb):
        names = [w for w, _s in emb.most_similar("broncos", top_k=5)]
        assert "broncos" not in names
        assert len(names) == 5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CooccurrenceEmbeddings().vector("x")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            CooccurrenceEmbeddings().fit([])

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            CooccurrenceEmbeddings(dim=1)

    def test_contains(self, emb):
        assert "broncos" in emb
        assert "qqqq" not in emb
