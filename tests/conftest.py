"""Shared fixtures: a small corpus and trained artifacts (session-scoped)."""

from __future__ import annotations

import pytest

from repro import GCED, QATrainer
from repro.datasets import load_dataset

CORPUS = [
    "The American Football Conference champion Denver Broncos defeated the "
    "National Football Conference champion Carolina Panthers to earn the "
    "Super Bowl title. The game was played at a stadium in Santa Clara. "
    "Many fans attended the ceremony before the game.",
    "Beyonce Giselle Knowles-Carter was born and raised in Houston, Texas. "
    "She performed in various singing and dancing competitions as a child. "
    "Her mother designed costumes for the group.",
    "William the Conqueror led the Norman conquest of England and won the "
    "Battle of Hastings in 1066. He was a duke from Normandy. The battle "
    "changed English history.",
    "Marie Delacroix discovered the twin comet in 1889 after a long "
    "expedition. She studied at the University of Ashford. Her rival "
    "Pierre Fontaine moved to Silverton in 1890.",
]

QA_CASES = [
    ("Which NFL team won the Super Bowl title?", "Denver Broncos", CORPUS[0]),
    (
        "What did Beyonce perform in as a child?",
        "singing and dancing competitions",
        CORPUS[1],
    ),
    ("Who led the Norman conquest of England?", "William the Conqueror", CORPUS[2]),
    ("When was the Battle of Hastings?", "1066", CORPUS[2]),
    ("Where was Beyonce born?", "Houston, Texas", CORPUS[1]),
    ("What did Marie Delacroix discover?", "the twin comet", CORPUS[3]),
]


@pytest.fixture(scope="session")
def artifacts():
    return QATrainer(seed=0).train(CORPUS)


@pytest.fixture(scope="session")
def gced(artifacts):
    return GCED(qa_model=artifacts.reader, artifacts=artifacts)


@pytest.fixture(scope="session")
def squad_dataset():
    return load_dataset("squad11", seed=1, n_train=40, n_dev=20)


@pytest.fixture(scope="session")
def squad20_dataset():
    return load_dataset("squad20", seed=1, n_train=40, n_dev=20)


@pytest.fixture(scope="session")
def trivia_dataset():
    return load_dataset("triviaqa-web", seed=1, n_train=30, n_dev=15)
