"""Unit tests for the evaluation harness: agreement, raters, experiments."""

import numpy as np
import pytest

from repro.eval import (
    ExperimentContext,
    RaterPanel,
    RatingRecord,
    format_table,
    krippendorff_alpha,
)
from repro.eval.stats import mean_confidence_interval, paired_pvalue


class TestKrippendorff:
    def test_perfect_agreement(self):
        ratings = np.array([[1.0, 2, 3, 4], [1, 2, 3, 4], [1, 2, 3, 4]])
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_random_near_zero(self):
        rng = np.random.default_rng(0)
        ratings = rng.integers(1, 6, size=(3, 200)).astype(float)
        assert abs(krippendorff_alpha(ratings)) < 0.15

    def test_missing_values_handled(self):
        ratings = np.array([[1.0, 2, np.nan], [1, 2, 3], [1, np.nan, 3]])
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_items_with_single_rating_ignored(self):
        ratings = np.array([[1.0, np.nan], [1.0, 5.0]])
        # Second item has one rating only and is dropped.
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_all_single_ratings_rejected(self):
        ratings = np.array([[1.0, np.nan], [np.nan, 2.0]])
        with pytest.raises(ValueError):
            krippendorff_alpha(ratings)

    def test_nominal_level(self):
        ratings = np.array([[1.0, 2, 1], [1, 2, 1]])
        assert krippendorff_alpha(ratings, level="nominal") == pytest.approx(1.0)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            krippendorff_alpha(np.ones((2, 2)), level="ratio")

    def test_noise_reduces_alpha(self):
        rng = np.random.default_rng(1)
        true = rng.uniform(1, 5, size=100)
        tight = np.vstack([true + rng.normal(0, 0.1, 100) for _ in range(3)])
        loose = np.vstack([true + rng.normal(0, 1.5, 100) for _ in range(3)])
        assert krippendorff_alpha(tight) > krippendorff_alpha(loose)


class TestRatingRecord:
    def test_perfect_evidence_scores_high(self):
        record = RatingRecord(1.0, 1.0, 0.7, question_coverage=1.0)
        scores = record.true_scores()
        assert scores["informativeness"] > 4.0
        assert scores["conciseness"] > 4.0
        assert scores["readability"] > 4.0

    def test_verbose_evidence_scores_low_conciseness(self):
        record = RatingRecord(1.0, 3.5, 0.7)
        assert record.true_scores()["conciseness"] < 2.0

    def test_uninformative_scores_low(self):
        record = RatingRecord(0.0, 1.0, 0.7)
        assert record.true_scores()["informativeness"] < 2.0

    def test_coverage_lowers_informativeness(self):
        high = RatingRecord(1.0, 1.0, 0.7, question_coverage=1.0)
        low = RatingRecord(1.0, 1.0, 0.7, question_coverage=0.0)
        assert (
            low.true_scores()["informativeness"]
            < high.true_scores()["informativeness"]
        )


class TestRaterPanel:
    def test_scores_in_unit_interval(self):
        panel = RaterPanel(seed=1)
        records = [RatingRecord(0.9, 1.2, 0.6) for _ in range(12)]
        result = panel.rate(records)
        for value in result.scores.values():
            assert 0.0 < value <= 1.0

    def test_alpha_in_plausible_band(self):
        panel = RaterPanel(seed=1)
        rng = np.random.default_rng(2)
        records = [
            RatingRecord(rng.uniform(0.5, 1), rng.uniform(0.8, 2.5), rng.uniform(0.2, 0.7))
            for _ in range(40)
        ]
        result = panel.rate(records, label="band")
        alphas = list(result.alpha.values())
        assert all(0.4 < a <= 1.0 for a in alphas)

    def test_deterministic(self):
        records = [RatingRecord(0.8, 1.4, 0.5) for _ in range(8)]
        r1 = RaterPanel(seed=3).rate(records, label="x")
        r2 = RaterPanel(seed=3).rate(records, label="x")
        assert r1.scores == r2.scores

    def test_hybrid_is_mean(self):
        panel = RaterPanel(seed=1)
        result = panel.rate([RatingRecord(0.9, 1.2, 0.6)] * 6)
        expected = sum(result.scores.values()) / 3
        assert result.hybrid == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RaterPanel().rate([])

    def test_invalid_panel(self):
        with pytest.raises(ValueError):
            RaterPanel(raters_per_group=1)

    def test_better_records_score_higher(self):
        panel = RaterPanel(seed=5)
        good = panel.rate([RatingRecord(1.0, 1.0, 0.7)] * 20, label="g")
        bad = panel.rate([RatingRecord(0.2, 3.0, 0.1)] * 20, label="b")
        assert good.hybrid > bad.hybrid + 0.2


class TestStats:
    def test_identical_samples_pvalue_one(self):
        assert paired_pvalue([1, 2, 3], [1, 2, 3]) == 1.0

    def test_different_samples_small_pvalue(self):
        a = [1.0] * 20
        b = [2.0 + 0.01 * i for i in range(20)]
        assert paired_pvalue(a, b) < 0.01

    def test_short_samples(self):
        assert paired_pvalue([1.0], [2.0]) == 1.0

    def test_confidence_interval_contains_mean(self):
        mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo <= mean <= hi

    def test_ci_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table([{"a": 1, "b": 2.5}], title="T")
        assert "T" in text and "a" in text and "2.50" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


@pytest.fixture(scope="module")
def small_ctx():
    return ExperimentContext.build("squad11", seed=0, n_train=30, n_dev=16)


class TestExperimentContext:
    def test_baselines_built(self, small_ctx):
        assert len(small_ctx.baselines) == 9

    def test_gold_evidence_cached(self, small_ctx):
        example = small_ctx.dataset.answerable_dev()[0]
        r1 = small_ctx.gold_evidence(example)
        r2 = small_ctx.gold_evidence(example)
        assert r1 is r2
        # The reuse is served by the distiller's shared results memo
        # (content-keyed), not a per-example-id shadow cache, so it is
        # visible in --profile cache stats.
        stats = small_ctx.distiller.stats()
        results_cache = next(
            c for c in stats.cache_stats if c.name == "results"
        )
        assert results_cache.hits >= 1

    def test_question_coverage_bounds(self, small_ctx):
        example = small_ctx.dataset.answerable_dev()[0]
        result = small_ctx.gold_evidence(example)
        coverage = small_ctx.question_coverage(example.question, result.evidence)
        assert 0.0 <= coverage <= 1.0

    def test_expected_length_reasonable(self, small_ctx):
        expected = small_ctx.expected_evidence_length(
            "Where was Adrian born?", "Ashford"
        )
        assert 4 <= expected <= 15
