"""Integration tests: full pipeline over generated datasets, experiment runners."""

import pytest

from repro import GCED, QATrainer
from repro.eval import (
    ExperimentContext,
    ablation_table,
    agreement_table,
    degradation_curves,
    human_evaluation_table,
    qa_augmentation_table,
    reduction_statistics,
)
from repro.metrics import f1_score


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.build("squad11", seed=0, n_train=40, n_dev=24)


class TestEndToEndDistillation:
    def test_distill_over_generated_dataset(self, squad_dataset):
        artifacts = QATrainer(seed=0).train(squad_dataset.contexts())
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        informative = 0
        examples = squad_dataset.answerable_dev()[:10]
        for example in examples:
            result = gced.distill(
                example.question, example.primary_answer, example.context
            )
            assert result.evidence
            assert result.scores.is_valid
            assert 0.0 <= result.reduction <= 1.0
            if result.scores.informativeness >= 0.5:
                informative += 1
        assert informative >= 7

    def test_distill_reduces_words_substantially(self, squad_dataset):
        artifacts = QATrainer(seed=0).train(squad_dataset.contexts())
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        reductions = []
        for example in squad_dataset.answerable_dev()[:10]:
            result = gced.distill(
                example.question, example.primary_answer, example.context
            )
            reductions.append(result.reduction)
        assert sum(reductions) / len(reductions) > 0.5

    def test_evidence_supports_answer_via_reader(self, squad_dataset):
        artifacts = QATrainer(seed=0).train(squad_dataset.contexts())
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        supported = 0
        examples = squad_dataset.answerable_dev()[:10]
        for example in examples:
            result = gced.distill(
                example.question, example.primary_answer, example.context
            )
            pred = artifacts.reader.predict(example.question, result.evidence)
            if f1_score(pred.text, example.primary_answer) > 0.5:
                supported += 1
        assert supported >= 7

    def test_unanswerable_handled(self, squad20_dataset):
        artifacts = QATrainer(seed=0).train(squad20_dataset.contexts())
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        impossible = [e for e in squad20_dataset.dev if e.is_impossible]
        if not impossible:
            impossible = [e for e in squad20_dataset.train if e.is_impossible]
        result = gced.distill(impossible[0].question, "", impossible[0].context)
        assert result.evidence == ""


class TestExperimentRunners:
    def test_qa_augmentation_improves(self, ctx):
        rows = qa_augmentation_table(ctx, n_examples=16)
        assert len(rows) == 9
        improved = sum(1 for r in rows if r["EM+GCED"] >= r["EM"])
        assert improved >= 8

    def test_human_eval_rows_in_band(self, ctx):
        rows = human_evaluation_table(ctx, n_examples=8)
        assert len(rows) == 10  # 9 models + ground truth
        for row in rows:
            for key in ("I", "C", "R", "H"):
                assert 0.4 < row[key] <= 1.0, row

    def test_agreement_alphas_positive(self, ctx):
        rows = agreement_table(ctx, n_examples=12)
        assert {r["criterion"] for r in rows} == {
            "informativeness", "conciseness", "readability", "hybrid",
        }
        for row in rows:
            for g in ("group1", "group2", "group3"):
                assert row[g] > 0.2

    def test_ablation_full_config_best_hybrid(self, ctx):
        rows = ablation_table(ctx, n_examples=8)
        by_source = {r["source"]: r for r in rows}
        full = by_source["full"]
        assert full["H"] >= max(
            r["H"] for r in rows if r["source"] != "full"
        ) - 0.08  # full config is at or near the top

    def test_ablation_targets_matching_criterion(self, ctx):
        rows = ablation_table(ctx, n_examples=8)
        by_source = {r["source"]: r for r in rows}
        # Removing ASE or Clip hurts conciseness.
        assert by_source["w/o ASE"]["C"] < by_source["full"]["C"]
        assert by_source["w/o CLIP"]["C"] <= by_source["full"]["C"] + 0.02
        # Removing QWS hurts informativeness.
        assert by_source["w/o QWS"]["I"] < by_source["full"]["I"]
        # Removing Grow hurts readability.
        assert by_source["w/o GROW"]["R"] < by_source["full"]["R"]

    def test_degradation_monotone_overall(self, ctx):
        rows = degradation_curves(
            ctx, deltas=(0.0, 0.5, 1.0), n_examples=16,
            model_names=("BERT-large",),
        )
        ems = [r["EM"] for r in rows]
        assert ems[0] >= ems[-1]  # full substitution never beats none

    def test_reduction_statistics(self, ctx):
        stats = reduction_statistics(ctx, n_examples=12)
        assert 0.4 < stats["mean_reduction"] < 1.0
        assert stats["mean_evidence_words"] < stats["mean_context_words"]


class TestCrossDatasetShape:
    def test_triviaqa_gains_larger_than_squad(self, ctx):
        trivia_ctx = ExperimentContext.build(
            "triviaqa-web", seed=0, n_train=30, n_dev=20
        )
        squad_rows = qa_augmentation_table(ctx, n_examples=16)
        trivia_rows = qa_augmentation_table(trivia_ctx, n_examples=16)
        squad_gain = sum(r["EM+GCED"] - r["EM"] for r in squad_rows) / 9
        trivia_gain = sum(r["EM+GCED"] - r["EM"] for r in trivia_rows) / 9
        assert trivia_gain > squad_gain

    def test_triviaqa_reduction_larger(self, ctx):
        trivia_ctx = ExperimentContext.build(
            "triviaqa-web", seed=0, n_train=30, n_dev=20
        )
        squad_stats = reduction_statistics(ctx, n_examples=10)
        trivia_stats = reduction_statistics(trivia_ctx, n_examples=10)
        assert trivia_stats["mean_reduction"] > squad_stats["mean_reduction"]
