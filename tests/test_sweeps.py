"""Unit tests for the configuration sweep utility."""

import pytest

from repro.core.config import GCEDConfig
from repro.eval.sweeps import config_grid, sweep_configs


class TestConfigGrid:
    def test_cartesian_product(self):
        grid = config_grid(clip_times=[1, 2, 3], max_answer_sentences=[2, 3])
        assert len(grid) == 6
        assert {c.clip_times for c in grid} == {1, 2, 3}

    def test_no_axes_returns_base(self):
        base = GCEDConfig(clip_times=5)
        grid = config_grid(base)
        assert grid == [base]

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            config_grid(nonexistent=[1])

    def test_base_fields_preserved(self):
        base = GCEDConfig(max_answer_sentences=2)
        grid = config_grid(base, clip_times=[1, 4])
        assert all(c.max_answer_sentences == 2 for c in grid)


class TestSweepConfigs:
    def test_sweep_rows(self, artifacts, squad_dataset):
        examples = squad_dataset.answerable_dev()[:6]
        configs = config_grid(clip_times=[0, 4])
        rows = sweep_configs(artifacts, examples, configs)
        assert len(rows) == 2
        for row in rows:
            assert row["n"] >= 5
            assert 0 <= row["H"] <= 1

    def test_more_clips_never_longer(self, artifacts, squad_dataset):
        examples = squad_dataset.answerable_dev()[:6]
        configs = config_grid(clip_times=[0, 6])
        rows = sweep_configs(artifacts, examples, configs)
        assert rows[1]["mean_words"] <= rows[0]["mean_words"]

    def test_labels_reflect_fields(self, artifacts, squad_dataset):
        examples = squad_dataset.answerable_dev()[:3]
        rows = sweep_configs(
            artifacts,
            examples,
            config_grid(clip_times=[2]),
            label_fields=("clip_times", "max_answer_sentences"),
        )
        assert "clip_times=2" in rows[0]["config"]
        assert "max_answer_sentences" in rows[0]["config"]

    def test_empty_examples_rejected(self, artifacts):
        with pytest.raises(ValueError):
            sweep_configs(artifacts, [], [GCEDConfig()])
