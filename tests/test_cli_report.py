"""CLI report-command test (small sizes; exercises the full suite path)."""

from repro.cli import main


class TestReportCommand:
    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--dataset", "squad11",
                "--out", str(out),
                "--n-train", "24",
                "--n-dev", "14",
                "--n-examples", "6",
            ]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("# GCED evaluation report — squad11")
        for section in ("Rater agreement", "QA augmentation", "Error triage"):
            assert section in text
        assert "report written" in capsys.readouterr().out
