"""Telemetry plane tests: tracing, metrics, logs, exemplars, propagation.

Covers the :mod:`repro.obs` primitives, the service-side wiring
(:class:`ServiceTelemetry`, ``/metrics``, ``/debug/traces``,
``X-Trace-Id``), cross-pool trace propagation (thread and process
workers, snapshot on and off), the scheduler's EWMA-on-success-only
batch latency, and the byte-identity guarantee: telemetry must observe
the pipeline without steering it.
"""

from __future__ import annotations

import io
import json
import logging
import pickle
import threading
import time
import types
import urllib.request

import pytest

from repro import GCED
from repro.core import BatchDistiller
from repro.engine.instrumentation import StageTiming
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonFormatter,
    MetricsRegistry,
    SlowTraceRing,
    TimingAccumulator,
    render_trace,
    span,
    start_trace,
)
from repro.obs import trace as obs_trace
from repro.obs.logs import RateLimitFilter
from repro.obs.metrics import (
    counter_family,
    lint_exposition,
    parse_exposition,
    sample_value,
)
from repro.retrieval import CorpusRetriever
from repro.service import DistillService, ServiceClient, start_server
from repro.service.scheduler import MicroBatchScheduler
from repro.service.telemetry import ServiceTelemetry
from repro.utils.timing import Timer
from tests.conftest import CORPUS, QA_CASES


# ---------------------------------------------------------------- tracing


class TestSpanPrimitives:
    def test_span_without_active_trace_is_shared_noop(self):
        first = span("anything", tag=1)
        second = span("else")
        assert first is second  # the shared null handle
        with first as handle:
            assert handle.tag(more=2) is handle  # tag() safe when untraced

    def test_nested_spans_parent_correctly(self):
        with start_trace("root") as handle:
            with span("outer"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        by_name = {s.name: s for s in handle.trace.spans}
        assert by_name["outer"].parent_id == handle.root.span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id == handle.root.span_id
        assert all(
            s.trace_id == handle.trace_id for s in handle.trace.spans
        )

    def test_trace_deactivated_after_exit(self):
        assert obs_trace.current() is None
        with start_trace("root"):
            assert obs_trace.current() is not None
        assert obs_trace.current() is None
        assert obs_trace.current_trace_id() is None

    def test_span_intervals_nest_monotonically(self):
        with start_trace("root") as handle:
            with span("child"):
                time.sleep(0.002)
        root, child = handle.root, handle.trace.spans[0]
        assert root.start <= child.start <= child.end <= root.end
        assert child.duration_ms >= 1.0

    def test_record_event_is_zero_duration(self):
        trace = obs_trace.Trace()
        event = obs_trace.record_event(trace, "hit", parent_id="p", k=3)
        assert event.start == event.end
        assert event.parent_id == "p"
        assert event.tags == {"k": 3}
        assert trace.spans == [event]

    def test_trace_ids_hex_and_span_ids_pid_scoped(self):
        assert len(obs_trace.new_trace_id()) == 16
        int(obs_trace.new_trace_id(), 16)  # hex or raises
        with start_trace("root") as handle:
            pass
        pid_part, _counter = handle.root.span_id.split(".")
        import os

        assert int(pid_part, 16) == os.getpid()

    def test_to_dict_sorted_and_picklable(self):
        with start_trace("root", kind="test") as handle:
            with span("a"):
                pass
            with span("b"):
                pass
        payload = handle.to_dict()
        assert payload["trace_id"] == handle.trace_id
        assert payload["n_spans"] == 3
        starts = [s["start"] for s in payload["spans"]]
        assert starts == sorted(starts)
        json.dumps(payload)  # JSON-safe for /debug/traces
        pickle.loads(pickle.dumps(handle.trace.spans))  # worker-shippable

    def test_explicit_ids_join_distributed_trace(self):
        with start_trace("worker", trace_id="feed" * 4, parent_id="up.1") as h:
            pass
        assert h.trace_id == "feed" * 4
        assert h.root.parent_id == "up.1"


class TestRenderTrace:
    def test_renders_tree_with_durations_and_tags(self):
        with start_trace("http.request", route="/distill") as handle:
            with span("scheduler.flush", size=2):
                with span("engine.distill"):
                    pass
        text = render_trace(handle.to_dict())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {handle.trace_id} ")
        assert "http.request" in lines[1]
        assert any("└─" in line or "├─" in line for line in lines)
        assert "route=/distill" in text
        assert "size=2" in text
        assert "ms" in text

    def test_orphan_spans_become_roots(self):
        trace = obs_trace.Trace()
        obs_trace.record_event(trace, "orphan", parent_id="never.recorded")
        text = render_trace(trace.to_dict())
        assert "orphan" in text


# ----------------------------------------------------- timing primitives


class TestTimingFold:
    def test_accumulator_observe_merge_mean(self):
        acc = TimingAccumulator()
        acc.observe(0.2)
        acc.observe(0.4)
        other = TimingAccumulator(calls=2, seconds=0.4)
        acc.merge(other)
        assert acc.calls == 4
        assert acc.seconds == pytest.approx(1.0)
        assert acc.mean_ms == pytest.approx(250.0)

    def test_timer_still_exposes_dict_views(self):
        timer = Timer()
        with timer.measure("parse"):
            pass
        with timer.measure("parse"):
            pass
        assert timer.counts["parse"] == 2
        assert "parse" in timer.totals
        assert timer.totals.get("missing", 0.0) == 0.0
        assert timer.mean("parse") >= 0.0

    def test_stage_timing_is_an_accumulator_with_halts(self):
        timing = StageTiming(calls=2, seconds=0.5, halts=1)
        assert isinstance(timing, TimingAccumulator)
        other = StageTiming(calls=1, seconds=0.1, halts=2)
        timing.merge(other)
        assert (timing.calls, timing.halts) == (3, 3)
        payload = timing.to_dict()
        assert set(payload) == {"calls", "seconds", "mean_ms", "halts"}


# ---------------------------------------------------------------- metrics


class TestMetricsPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_merge_max(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value == 3
        other = Gauge()
        other.set(7)
        gauge.merge(other)
        assert gauge.value == 7

    def test_histogram_buckets_and_merge(self):
        hist = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        cumulative, total, count = hist.snapshot()
        assert cumulative == [1, 2, 3]  # <=0.1, <=1.0, +Inf
        assert count == 3
        assert total == pytest.approx(5.55)
        other = Histogram(buckets=(0.1, 1.0))
        other.observe(0.2)
        hist.merge(other)
        assert hist.snapshot()[0] == [1, 3, 4]
        with pytest.raises(ValueError):
            hist.merge(Histogram(buckets=(0.5,)))

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))


class TestMetricsRegistry:
    def build_registry(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "app_requests_total", "Requests", labelnames=("route",)
        )
        requests.labels(route="/a").inc(3)
        requests.labels(route="/b").inc()
        registry.gauge("app_depth", "Depth").set(7)
        registry.histogram("app_latency_seconds", "Latency").observe(0.02)
        return registry

    def test_render_is_lint_clean_and_parses_back(self):
        registry = self.build_registry()
        text = registry.render()
        assert lint_exposition(text) == []
        families = parse_exposition(text)
        assert sample_value(families, "app_requests_total", route="/a") == 3
        assert sample_value(families, "app_depth") == 7
        assert (
            sample_value(families, "app_latency_seconds_count") == 1
        )
        assert families["app_requests_total"]["type"] == "counter"

    def test_duplicate_name_rejected(self):
        registry = self.build_registry()
        with pytest.raises(ValueError):
            registry.counter("app_requests_total", "again")

    def test_callback_families_rendered(self):
        registry = MetricsRegistry()
        registry.register_callback(
            lambda: [counter_family("cb_events_total", "Events", 4)]
        )
        families = parse_exposition(registry.render())
        assert sample_value(families, "cb_events_total") == 4

    def test_lint_catches_real_problems(self):
        bad = (
            "# TYPE x counter\nx 1\n"  # counter without _total
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\nh_bucket{le="+Inf"} 3\n'  # non-monotone
            "h_count 3\nh_sum 1.0\n"
        )
        problems = lint_exposition(bad)
        assert problems  # both defects reported
        assert any("_total" in p for p in problems)
        assert any(
            "monoton" in p or "+Inf" in p or "cumulative" in p
            for p in problems
        )


# ------------------------------------------------------------------- logs


class TestStructuredLogs:
    def make_logger(self, name: str):
        logger = logging.getLogger(name)
        logger.handlers.clear()
        logger.propagate = False
        logger.setLevel(logging.INFO)
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
        return logger, stream

    def test_json_line_with_fields_and_trace_id(self):
        logger, stream = self.make_logger("test.obs.json")
        with start_trace("req") as handle:
            logger.info(
                "access", extra={"fields": {"path": "/x", "status": 200}}
            )
        line = json.loads(stream.getvalue().strip())
        assert line["msg"] == "access"
        assert line["level"] == "info"
        assert line["path"] == "/x"
        assert line["status"] == 200
        assert line["trace_id"] == handle.trace_id

    def test_no_trace_id_outside_traces(self):
        logger, stream = self.make_logger("test.obs.notrace")
        logger.info("plain")
        line = json.loads(stream.getvalue().strip())
        assert "trace_id" not in line

    def test_rate_limit_counts_drops(self):
        logger, stream = self.make_logger("test.obs.rate")
        limiter = RateLimitFilter(rate=0.0001, burst=2)
        logger.handlers[0].addFilter(limiter)
        for _ in range(5):
            logger.info("burst")
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line
        ]
        assert len(lines) == 2  # burst allowed, rest dropped
        assert limiter.dropped == 3


# -------------------------------------------------------------- exemplars


class TestSlowTraceRing:
    def test_threshold_and_capacity(self):
        ring = SlowTraceRing(capacity=2, threshold_ms=100.0)
        assert not ring.offer({"trace_id": "fast"}, 50.0)
        for index in range(3):
            assert ring.offer({"trace_id": f"t{index}"}, 200.0 + index)
        snap = ring.snapshot()
        assert snap["seen"] == 4
        assert snap["kept"] == 3
        assert len(snap["traces"]) == 2  # capacity bound
        # Newest first.
        assert snap["traces"][0]["trace"]["trace_id"] == "t2"
        assert len(ring) == 2


# ----------------------------------------------------- sampling policy


def stub_service():
    """The minimal surface ServiceTelemetry touches at construction."""
    return types.SimpleNamespace(
        scheduler=types.SimpleNamespace(on_batch=None)
    )


class TestSamplingPolicy:
    def test_every_nth_deterministic(self):
        telemetry = ServiceTelemetry(stub_service(), trace_sample=0.5)
        handles = [telemetry.maybe_trace("req") for _ in range(8)]
        # Period 2: exactly every second request traced, no randomness.
        assert [h is not None for h in handles] == [False, True] * 4

    def test_zero_sample_disables_unforced_tracing(self):
        telemetry = ServiceTelemetry(stub_service(), trace_sample=0.0)
        assert telemetry.maybe_trace("req") is None
        forced = telemetry.maybe_trace("req", trace_id="cafe" * 4)
        assert forced is not None
        assert forced.trace_id == "cafe" * 4

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            ServiceTelemetry(stub_service(), trace_sample=1.5)

    def test_finish_trace_feeds_slow_ring(self):
        telemetry = ServiceTelemetry(
            stub_service(), trace_sample=1.0, slow_trace_ms=0.0
        )
        handle = telemetry.maybe_trace("req")
        with handle:
            pass
        telemetry.finish_trace(handle)
        snap = telemetry.slow_ring.snapshot()
        assert snap["kept"] == 1
        assert snap["traces"][0]["trace"]["trace_id"] == handle.trace_id


# ------------------------------------------------- scheduler EWMA fix


class FlakyDistiller:
    """Batch path fails on demand; per-request fallback always works."""

    def __init__(self) -> None:
        self.fail_batches = False

    def distill_many(self, triples):
        if self.fail_batches:
            raise RuntimeError("batch executor died")
        return [("ok",) + tuple(t) for t in triples]

    def distill_one(self, question, answer, context):
        return ("ok", question, answer, context)


class TestSchedulerEwma:
    def test_failed_batches_do_not_update_ewma(self):
        distiller = FlakyDistiller()
        distiller.fail_batches = True
        observed = []
        done = threading.Event()
        with MicroBatchScheduler(
            distiller, max_batch_size=4, max_wait_ms=1
        ) as scheduler:
            scheduler.on_batch = lambda *args: (
                observed.append(args),
                done.set(),
            )
            # The batch path fails, every request succeeds via fallback —
            # its duration includes the serial re-run and must not feed
            # the Retry-After EWMA.
            assert scheduler.distill("q", "a", "c")[0] == "ok"
            assert done.wait(timeout=5)
            assert scheduler.stats().ewma_batch_ms == 0.0
            _seconds, size, _reason, ok = observed[-1]
            assert (size, ok) == (1, False)

            # A successful batch does update it.
            distiller.fail_batches = False
            done.clear()
            assert scheduler.distill("q2", "a", "c")[0] == "ok"
            assert done.wait(timeout=5)
            assert scheduler.stats().ewma_batch_ms > 0.0
            assert observed[-1][3] is True


# ----------------------------------------- cross-pool trace propagation


class TestTracePropagation:
    def test_thread_pool_spans_join_parent_trace(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        cases = QA_CASES[:3]
        with BatchDistiller(gced, workers=2, backend="thread") as batch:
            with start_trace("parent") as handle:
                batch.distill_many(cases)
        names = [s.name for s in handle.trace.spans]
        assert names.count("engine.distill") == len(cases)
        engine_spans = [
            s for s in handle.trace.spans if s.name == "engine.distill"
        ]
        # Thread workers re-activate the caller's context: engine spans
        # parent directly on the root span, stage spans on their engine
        # span, all inside the root interval.
        root = handle.root
        for engine_span in engine_spans:
            assert engine_span.parent_id == root.span_id
            assert root.start <= engine_span.start
            assert engine_span.end <= root.end
        stage_parents = {
            s.parent_id
            for s in handle.trace.spans
            if s.name.startswith("stage.")
        }
        assert stage_parents <= {s.span_id for s in engine_spans}

    @pytest.mark.parametrize("snapshot", [None, False], ids=["warm", "cold"])
    def test_process_workers_ship_spans_back(self, artifacts, snapshot):
        import os

        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        cases = QA_CASES[:3]
        kwargs = {} if snapshot is None else {"snapshot": snapshot}
        with BatchDistiller(
            gced, workers=2, backend="process", **kwargs
        ) as batch:
            with start_trace("parent") as handle:
                results = batch.distill_many(cases)
        assert all(r is not None for r in results)

        spans = handle.trace.spans
        worker_roots = [s for s in spans if s.name == "worker.distill"]
        assert len(worker_roots) == len(cases)
        root = handle.root
        worker_ids = set()
        for worker_span in worker_roots:
            # Joined trace: same trace id, rooted under the coordinator's
            # active span, stamped with the (different) worker pid.
            assert worker_span.trace_id == handle.trace_id
            assert worker_span.parent_id == root.span_id
            assert worker_span.tags["pid"] != os.getpid()
            # Wall-clock intervals nest inside the parent span.
            assert root.start <= worker_span.start
            assert worker_span.end <= root.end
            worker_ids.add(worker_span.span_id)
        # Worker-side engine/stage spans came along and nest correctly.
        engine_spans = [s for s in spans if s.name == "engine.distill"]
        assert len(engine_spans) == len(cases)
        by_id = {s.span_id: s for s in spans}
        for engine_span in engine_spans:
            assert engine_span.parent_id in worker_ids
            parent = by_id[engine_span.parent_id]
            assert parent.start <= engine_span.start
            assert engine_span.end <= parent.end
        assert any(s.name.startswith("stage.") for s in spans)

    def test_untraced_process_run_ships_no_spans(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with BatchDistiller(
            gced, workers=2, backend="process", snapshot=False
        ) as batch:
            results = batch.distill_many(QA_CASES[:2])
        assert all(r is not None for r in results)
        assert obs_trace.current() is None


class TestByteIdentity:
    def test_distill_identical_traced_or_not(self, artifacts):
        question, answer, context = QA_CASES[2]
        plain = GCED(qa_model=artifacts.reader, artifacts=artifacts).distill(
            question, answer, context
        )
        with start_trace("traced"):
            traced = GCED(
                qa_model=artifacts.reader, artifacts=artifacts
            ).distill(question, answer, context)
        assert traced.evidence == plain.evidence
        assert traced.scores == plain.scores
        assert pickle.dumps(traced.scores) == pickle.dumps(plain.scores)


# ------------------------------------------------------- HTTP telemetry


@pytest.fixture(scope="module")
def served_obs(artifacts):
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    service = DistillService(
        gced,
        max_batch_size=4,
        max_wait_ms=5,
        retriever=CorpusRetriever.build(CORPUS, n_shards=2),
        slow_trace_ms=0.0,  # keep every finished trace in the ring
    )
    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


class TestHTTPTelemetry:
    def test_metrics_endpoint_lint_clean(self, served_obs):
        _service, client = served_obs
        client.distill(*QA_CASES[0])
        text = client.metrics_text()
        assert lint_exposition(text) == []

    def test_metrics_agree_with_stats(self, served_obs):
        _service, client = served_obs
        client.distill(*QA_CASES[1])
        pairs = (
            ("gced_scheduler_submitted_total", "submitted"),
            ("gced_scheduler_completed_total", "completed"),
            ("gced_scheduler_coalesced_total", "coalesced"),
            ("gced_scheduler_shed_total", "shed"),
        )
        # The flush thread bumps `completed` just after resolving the
        # future that unblocked the client, so poll briefly for the two
        # surfaces to settle on the same counters.
        for _ in range(100):
            families = parse_exposition(client.metrics_text())
            stats = client.stats()
            scheduler = stats["scheduler"]
            if all(
                sample_value(families, metric) == scheduler[field]
                for metric, field in pairs
            ):
                break
            time.sleep(0.02)
        for metric, field in pairs:
            assert sample_value(families, metric) == scheduler[field]
        assert (
            sample_value(families, "gced_admission_admitted_total")
            == stats["admission"]["admitted"]
        )
        assert sample_value(families, "gced_uptime_seconds") > 0
        assert stats["obs"]["trace_sample"] == 1.0

    def test_x_trace_id_echoed_and_trace_captured(self, served_obs):
        _service, client = served_obs
        trace_id = "cafef00d" * 2
        body = json.dumps(
            {
                "question": QA_CASES[3][0],
                "answer": QA_CASES[3][1],
                "context": QA_CASES[3][2],
            }
        ).encode()
        request = urllib.request.Request(
            f"{client.base_url}/distill",
            data=body,
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": trace_id,
            },
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Trace-Id"] == trace_id
            json.loads(response.read())
        # finish_trace runs just after the response bytes go out; poll.
        for _ in range(100):
            traces = client.debug_traces()["traces"]
            if any(t["trace"]["trace_id"] == trace_id for t in traces):
                break
            time.sleep(0.02)
        else:
            pytest.fail("X-Trace-Id trace never reached /debug/traces")

    def test_debug_traces_render_full_span_tree(self, served_obs):
        _service, client = served_obs
        client.distill(*QA_CASES[4])
        # Every request (this poll's GETs included) is traced at sample
        # 1.0 and kept at threshold 0, so hunt for a /distill exemplar
        # rather than taking the newest entry.
        entry = None
        for _ in range(100):
            for candidate in client.debug_traces()["traces"]:
                names = {s["name"] for s in candidate["trace"]["spans"]}
                if "admission.admit" in names:
                    entry = candidate
                    break
            if entry is not None:
                break
            time.sleep(0.02)
        assert entry is not None, "no /distill trace reached the ring"
        names = {s["name"] for s in entry["trace"]["spans"]}
        text = render_trace(entry["trace"])
        assert "http.request" in text
        # A traced /distill covers HTTP -> admission -> scheduler ->
        # engine stages end to end.
        assert {"http.request", "admission.admit", "scheduler.wait"} <= names
        assert any(n.startswith("scheduler.") for n in names)

    def test_trace_sample_zero_service_stays_dark(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(
            gced, max_wait_ms=1, trace_sample=0.0, slow_trace_ms=0.0
        ) as service:
            service.distill(*QA_CASES[0])
            assert service.telemetry.stats_block()["traces_started"] == 0
            assert len(service.telemetry.slow_ring) == 0
