"""Consistency tests for the statement/question templates.

These guard the generator's core contract: every statement realization
embeds the answer slots verbatim, and every question template's slots are
available on the fact it is asked about.
"""

import numpy as np
import pytest

from repro.datasets.kb import KnowledgeBase
from repro.datasets.templates import (
    question_slots,
    realize_question,
    realize_statement,
)


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase(seed=11, n_people=20, n_teams=6, n_cities=8)


def _all_facts(kb):
    facts = []
    for person in kb.people[:8]:
        facts.extend(kb.facts_about(person))
    facts.extend(kb.facts_about_team(kb.teams[0], kb.teams[1]))
    for city in kb.cities[:3]:
        facts.extend(kb.facts_about_city(city))
    facts.extend(kb.facts_about_battle(kb.battles[0]))
    for band in kb.bands[:3]:
        facts.extend(kb.facts_about_band(band))
    for country in kb.countries[:3]:
        facts.extend(kb.facts_about_country(country))
    return facts


class TestTemplateConsistency:
    def test_statements_contain_answer_slots(self, kb):
        rng = np.random.default_rng(0)
        for fact in _all_facts(kb):
            for _ in range(4):  # cover template and embellishment variants
                sentence = realize_statement(fact, rng, embellish=0.8)
                for slot in question_slots(fact.relation):
                    answer = str(fact.answer_of[slot])
                    assert answer.lower() in sentence.lower(), (
                        fact.relation, slot, sentence
                    )

    def test_question_slots_exist_on_facts(self, kb):
        for fact in _all_facts(kb):
            for slot in question_slots(fact.relation):
                assert slot in fact.answer_of, (fact.relation, slot)

    def test_questions_render_for_every_slot(self, kb):
        rng = np.random.default_rng(1)
        for fact in _all_facts(kb):
            for slot in question_slots(fact.relation):
                question, answer = realize_question(fact, slot, rng)
                assert question.endswith("?")
                assert answer
                assert "{" not in question  # no unfilled placeholders

    def test_statements_end_with_period(self, kb):
        rng = np.random.default_rng(2)
        for fact in _all_facts(kb):
            sentence = realize_statement(fact, rng, embellish=0.9)
            assert sentence.endswith(".")
            assert "{" not in sentence

    def test_every_relation_is_askable(self, kb):
        for fact in _all_facts(kb):
            assert question_slots(fact.relation), fact.relation

    def test_embellishment_zero_is_plain(self, kb):
        rng = np.random.default_rng(3)
        fact = kb.facts_about(kb.people[0])[0]
        sentences = {realize_statement(fact, rng, embellish=0.0) for _ in range(6)}
        # Only the base template variants appear, no leading adverbials.
        for sentence in sentences:
            assert not sentence.startswith(
                ("In the early years", "According to", "As the records")
            )
