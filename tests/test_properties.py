"""Property-based tests (hypothesis) on core invariants."""


from hypothesis import given, settings, strategies as st

from repro.metrics.overlap import exact_match, f1_score, precision_recall_f1
from repro.metrics.conciseness import conciseness_score
from repro.parsing.tree import DependencyTree
from repro.text.normalize import normalize_answer
from repro.text.stem import lemma, light_stem
from repro.text.tokenizer import detokenize, tokenize
from repro.text.sentences import split_sentences
from repro.text.vocab import Vocabulary
from repro.utils.rng import derive_seed

# The library targets English text; ASCII alphabets keep the properties
# meaningful (Unicode casefolding can change string length, e.g. 'İ').
words = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
    min_size=1,
    max_size=12,
)
texts = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,!?'-()",
    max_size=200,
)


class TestTokenizerProperties:
    @given(texts)
    @settings(max_examples=150)
    def test_offsets_always_roundtrip(self, text):
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    @given(texts)
    @settings(max_examples=100)
    def test_indices_strictly_increasing(self, text):
        tokens = tokenize(text)
        assert [t.index for t in tokens] == list(range(len(tokens)))

    @given(texts)
    @settings(max_examples=100)
    def test_spans_never_overlap(self, text):
        tokens = tokenize(text)
        for a, b in zip(tokens, tokens[1:]):
            assert a.end <= b.start

    @given(st.lists(words, max_size=12))
    @settings(max_examples=100)
    def test_detokenize_preserves_word_tokens(self, token_list):
        rebuilt = detokenize(token_list)
        assert [t.text for t in tokenize(rebuilt)] == [
            t.text for w in token_list for t in tokenize(w)
        ]


class TestSentenceProperties:
    @given(texts)
    @settings(max_examples=100)
    def test_sentence_offsets_roundtrip(self, text):
        for sent in split_sentences(text):
            assert text[sent.start : sent.end] == sent.text

    @given(texts)
    @settings(max_examples=100)
    def test_sentences_ordered_and_disjoint(self, text):
        sents = split_sentences(text)
        for a, b in zip(sents, sents[1:]):
            assert a.end <= b.start


class TestOverlapProperties:
    @given(texts, texts)
    @settings(max_examples=150)
    def test_f1_symmetric(self, a, b):
        assert f1_score(a, b) == f1_score(b, a)

    @given(texts, texts)
    @settings(max_examples=150)
    def test_f1_bounded(self, a, b):
        assert 0.0 <= f1_score(a, b) <= 1.0

    @given(texts)
    @settings(max_examples=100)
    def test_self_match_perfect(self, a):
        assert f1_score(a, a) == 1.0
        assert exact_match(a, a) == 1.0

    @given(texts, texts)
    @settings(max_examples=100)
    def test_em_implies_f1(self, a, b):
        if exact_match(a, b) == 1.0:
            assert f1_score(a, b) == 1.0

    @given(texts, texts)
    @settings(max_examples=100)
    def test_precision_recall_bounded(self, a, b):
        p, r, f1 = precision_recall_f1(a, b)
        assert 0 <= p <= 1 and 0 <= r <= 1
        if p > 0 and r > 0:
            assert f1 <= max(p, r) + 1e-9


class TestNormalizeProperties:
    @given(texts)
    @settings(max_examples=100)
    def test_idempotent(self, text):
        once = normalize_answer(text)
        assert normalize_answer(once) == once

    @given(words)
    @settings(max_examples=100)
    def test_stem_never_longer(self, word):
        assert len(light_stem(word)) <= len(word)

    @given(words)
    @settings(max_examples=100)
    def test_lemma_lowercase(self, word):
        assert lemma(word) == lemma(word.upper())


class TestConcisenessProperties:
    @given(st.lists(words, min_size=1, max_size=20), st.lists(words, min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_monotone_in_length(self, evidence_words, answer_words):
        evidence = " ".join(evidence_words)
        longer = evidence + " extra trailing words here"
        answer = " ".join(answer_words)
        short_score = conciseness_score(evidence, answer)
        long_score = conciseness_score(longer, answer)
        if short_score != float("-inf") and long_score != float("-inf"):
            assert long_score <= short_score


class TestTreeProperties:
    @given(st.integers(min_value=1, max_value=30), st.randoms())
    @settings(max_examples=100)
    def test_random_tree_invariants(self, n, rnd):
        # Build a random valid parent array: node i attaches to some j < i.
        parents = [-1] + [rnd.randrange(0, i) for i in range(1, n)]
        tree = DependencyTree([f"w{i}" for i in range(n)], parents)
        assert tree.root == 0
        # Subtree sizes sum correctly: root subtree covers all nodes.
        assert tree.subtree(0) == set(range(n))
        # Every non-root is in its parent's subtree.
        for i in range(1, n):
            assert i in tree.subtree(tree.parent(i))
        # Depth is consistent with ancestors.
        for i in range(n):
            assert tree.depth(i) == len(tree.ancestors(i))

    @given(st.integers(min_value=2, max_value=25), st.randoms())
    @settings(max_examples=60)
    def test_subtree_partition(self, n, rnd):
        parents = [-1] + [rnd.randrange(0, i) for i in range(1, n)]
        tree = DependencyTree([f"w{i}" for i in range(n)], parents)
        children = tree.children(0)
        covered = {0}
        for child in children:
            sub = tree.subtree(child)
            assert covered.isdisjoint(sub)
            covered |= sub
        assert covered == set(range(n))


class TestVocabularyProperties:
    @given(st.lists(st.lists(words, max_size=8), max_size=8))
    @settings(max_examples=60)
    def test_encode_decode_known_tokens(self, docs):
        vocab = Vocabulary.build(docs)
        for doc in docs:
            decoded = vocab.decode(vocab.encode(doc))
            assert decoded == list(doc)


class TestSeedProperties:
    @given(st.integers(min_value=0, max_value=2**31), words)
    @settings(max_examples=100)
    def test_derive_seed_stable_and_bounded(self, seed, label):
        a = derive_seed(seed, label)
        assert a == derive_seed(seed, label)
        assert 0 <= a < 2**32
