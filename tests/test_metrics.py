"""Unit tests for the evidence-quality metrics (Eq. 1-5)."""

import pytest

from repro.lm import NGramLanguageModel
from repro.metrics import (
    HybridScorer,
    HybridWeights,
    InformativenessScorer,
    conciseness_score,
    exact_match,
    f1_score,
    precision_recall_f1,
)
from repro.metrics.overlap import best_em, best_f1
from repro.metrics.readability import ReadabilityScorer


class TestOverlap:
    def test_exact_match_normalized(self):
        assert exact_match("The Broncos", "broncos") == 1.0
        assert exact_match("Panthers", "Broncos") == 0.0

    def test_f1_perfect(self):
        assert f1_score("Denver Broncos", "Denver Broncos") == 1.0

    def test_f1_partial(self):
        p, r, f1 = precision_recall_f1("Denver Broncos win", "Denver Broncos")
        assert r == 1.0
        assert p == pytest.approx(2 / 3)
        assert 0 < f1 < 1

    def test_f1_no_overlap(self):
        assert f1_score("apple", "orange") == 0.0

    def test_both_empty_is_match(self):
        assert precision_recall_f1("", "") == (1.0, 1.0, 1.0)
        assert exact_match("", "") == 1.0

    def test_one_empty_is_zero(self):
        assert f1_score("", "answer") == 0.0
        assert f1_score("answer", "") == 0.0

    def test_multiplicity_counted(self):
        p, r, f1 = precision_recall_f1("x x y", "x y y")
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)

    def test_best_over_multiple_golds(self):
        assert best_em("Broncos", ["Panthers", "Broncos"]) == 1.0
        assert best_f1("Denver", ["Denver Broncos", "Panthers"]) > 0.0

    def test_best_with_no_golds(self):
        assert best_em("x", []) == 0.0
        assert best_em("", []) == 1.0


class TestConciseness:
    def test_valid_evidence(self):
        assert conciseness_score("a b c d e", "a b") == pytest.approx(1 / 5)

    def test_too_short_discarded(self):
        assert conciseness_score("Denver Broncos", "Denver Broncos") == float("-inf")
        assert conciseness_score("a", "a b c") == float("-inf")

    def test_punctuation_not_counted(self):
        assert conciseness_score("a, b, c!", "x") == pytest.approx(1 / 3)


class TestReadability:
    @pytest.fixture(scope="class")
    def scorer(self):
        lm = NGramLanguageModel().fit(
            [["the", "duke", "led", "the", "conquest"]] * 5
        )
        return ReadabilityScorer(lm)

    def test_score_in_unit_interval(self, scorer):
        score = scorer.score("the duke led the conquest")
        assert 0 < score <= 1

    def test_fluent_beats_shuffled(self, scorer):
        fluent = scorer.score("the duke led the conquest")
        shuffled = scorer.score("conquest the led duke the")
        assert fluent > shuffled

    def test_empty_is_zero(self, scorer):
        assert scorer.score("") == 0.0

    def test_invalid_gamma(self):
        lm = NGramLanguageModel().fit([["a"]])
        with pytest.raises(ValueError):
            ReadabilityScorer(lm, gamma=0)


class TestHybridWeights:
    def test_defaults_sum_to_one(self):
        w = HybridWeights()
        assert w.alpha + w.beta + w.gamma == pytest.approx(1.0)

    def test_invalid_sum_rejected(self):
        with pytest.raises(ValueError):
            HybridWeights(0.5, 0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HybridWeights(-0.2, 0.6, 0.6)


class TestHybridScorer:
    @pytest.fixture(scope="class")
    def scorer(self, artifacts):
        return HybridScorer(
            informativeness=InformativenessScorer(artifacts.reader),
            readability=ReadabilityScorer(artifacts.language_model),
        )

    def test_scores_components(self, scorer):
        scores = scorer.score(
            "Who led the Norman conquest of England?",
            "William the Conqueror",
            "William the Conqueror led the Norman conquest of England",
        )
        assert scores.is_valid
        assert scores.informativeness > 0.5
        assert 0 < scores.hybrid <= 1

    def test_too_short_evidence_invalid(self, scorer):
        scores = scorer.score("Who?", "William the Conqueror", "William the")
        assert not scores.is_valid
        assert scores.hybrid == float("-inf")

    def test_hybrid_is_weighted_sum(self, scorer):
        scores = scorer.score(
            "When was the Battle of Hastings?",
            "1066",
            "won the Battle of Hastings in 1066",
        )
        w = scorer.weights
        expected = (
            w.alpha * scores.informativeness
            + w.beta * scores.readability
            + w.gamma * scores.conciseness
        )
        assert scores.hybrid == pytest.approx(expected)

    def test_normalized_conciseness_bounds(self, scorer):
        c = scorer.normalized_conciseness("a b c d e f g", "a")
        assert 0 < c <= 1


class TestInformativeness:
    def test_empty_evidence_zero(self, artifacts):
        scorer = InformativenessScorer(artifacts.reader)
        assert scorer.score("Who?", "x", "  ") == 0.0

    def test_caching(self, artifacts):
        scorer = InformativenessScorer(artifacts.reader)
        args = (
            "Who led the Norman conquest of England?",
            "William the Conqueror",
            "William the Conqueror led the Norman conquest of England",
        )
        first = scorer.score(*args)
        assert scorer.score(*args) == first
        assert scorer._cache.hits >= 1
