"""Unit tests for utilities: rng, cache, timing."""

import threading
import time

import pytest

from repro.utils import LRUCache, Timer, derive_seed, memoize_method, rng_from


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_separates_streams(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_32bit_range(self):
        seed = derive_seed(123456789, "long-label" * 10)
        assert 0 <= seed < 2**32

    def test_rng_from_reproducible(self):
        assert rng_from(7, "x").random() == rng_from(7, "x").random()


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        assert cache.hits == 1 and cache.misses == 1

    def test_update_refreshes(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_record_hits_and_snapshot(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.record_hits(3)
        assert cache.snapshot() == (4, 1, 1, 0)

    def test_peek_is_stats_and_recency_free(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("missing", "default") == "default"
        # No hit/miss counting...
        assert cache.snapshot() == (0, 0, 2, 0)
        # ...and no recency refresh: "a" is still the eviction victim.
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache


class TestLRUCacheByteBudget:
    """The optional size-estimator / byte-budget bound."""

    def test_evicts_lru_entries_over_byte_budget(self):
        cache = LRUCache(capacity=100, size_estimator=len, max_bytes=10)
        cache.put("a", "xxxx")
        cache.put("b", "xxxx")
        cache.put("c", "xxxx")  # 12 bytes total: "a" must go
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.snapshot().bytes == 8

    def test_replacement_does_not_double_count(self):
        cache = LRUCache(capacity=100, size_estimator=len, max_bytes=100)
        cache.put("a", "xx")
        cache.put("a", "xxxxxx")
        assert cache.snapshot().bytes == 6

    def test_newest_entry_survives_even_when_oversized(self):
        cache = LRUCache(capacity=100, size_estimator=len, max_bytes=4)
        cache.put("small", "xx")
        cache.put("big", "x" * 50)
        assert "big" in cache and "small" not in cache
        assert cache.get("big") == "x" * 50

    def test_eviction_and_clear_release_bytes(self):
        cache = LRUCache(capacity=2, size_estimator=len, max_bytes=1000)
        cache.put("a", "xx")
        cache.put("b", "xxx")
        cache.put("c", "xxxx")  # capacity eviction must release "a"'s bytes
        assert cache.snapshot().bytes == 7
        cache.clear()
        assert cache.snapshot() == (0, 0, 0, 0)

    def test_max_bytes_requires_estimator(self):
        with pytest.raises(ValueError):
            LRUCache(max_bytes=10)
        with pytest.raises(ValueError):
            LRUCache(size_estimator=len, max_bytes=0)

    def test_bytes_zero_without_estimator(self):
        cache = LRUCache(capacity=4)
        cache.put("a", "payload")
        assert cache.snapshot().bytes == 0


class TestLRUCacheConcurrency:
    """The scheduler's concurrent flushes hammer one shared cache."""

    N_THREADS = 8
    OPS = 3000

    def test_stress_from_8_threads(self):
        cache = LRUCache(capacity=64)
        barrier = threading.Barrier(self.N_THREADS)
        gets_done = [0] * self.N_THREADS
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(self.OPS):
                    key = (tid * 7 + i * 13) % 200
                    if i % 3 == 0:
                        cache.put(key, (tid, i))
                    else:
                        cache.get(key)
                        gets_done[tid] += 1
                    if i % 17 == 0:
                        assert len(cache) <= 64
                        key in cache  # noqa: B015 - exercises locked path
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        # Eviction never overshoots the capacity bound.
        assert len(cache) <= 64
        # Counter bookkeeping survived: every get() recorded exactly one
        # hit or miss, with no lost updates.
        hits, misses, size, _bytes = cache.snapshot()
        assert hits + misses == sum(gets_done)
        assert size == len(cache)

    def test_record_hits_concurrent_credits_are_not_lost(self):
        cache = LRUCache(capacity=8)
        per_thread, n_threads = 250, 8
        barrier = threading.Barrier(n_threads)

        def credit() -> None:
            barrier.wait()
            for _ in range(per_thread):
                cache.record_hits(1)

        threads = [
            threading.Thread(target=credit) for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert cache.hits == per_thread * n_threads


class TestMemoizeMethod:
    def test_caches_per_instance(self):
        calls = []

        class Thing:
            @memoize_method()
            def compute(self, x):
                calls.append(x)
                return x * 2

        t1, t2 = Thing(), Thing()
        assert t1.compute(3) == 6
        assert t1.compute(3) == 6
        assert t2.compute(3) == 6
        assert calls == [3, 3]  # once per instance


class TestTimer:
    def test_measures_and_reports(self):
        timer = Timer()
        with timer.measure("stage"):
            time.sleep(0.01)
        assert timer.totals["stage"] >= 0.01
        assert timer.counts["stage"] == 1
        assert "stage" in timer.report()

    def test_mean_of_unmeasured(self):
        assert Timer().mean("nothing") == 0.0
