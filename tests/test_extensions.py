"""Unit tests for the extension modules: knowledge graph, batch, serialize, viz."""

import pytest

from repro.core import BatchDistiller, read_results_jsonl, write_results_jsonl
from repro.core.serialize import result_to_dict
from repro.datasets import KnowledgeBase
from repro.lexicon import KnowledgeGraph, graph_from_kb
from repro.viz import evidence_html, render_distillation, render_tree
from tests.conftest import QA_CASES


class TestKnowledgeGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        graph = KnowledgeGraph()
        graph.add_triples(
            [
                ("Solomon", "child_of", "David"),
                ("David", "married_to", "Bathsheba"),
                ("Solomon", "built", "the Temple"),
                ("David", "ruled", "Israel"),
            ]
        )
        return graph

    def test_counts(self, graph):
        assert len(graph) == 5
        assert graph.n_edges == 4

    def test_resolve_multiword(self, graph):
        assert "the temple" in graph.resolve("temple")

    def test_contains(self, graph):
        assert "solomon" in graph
        assert "nobody" not in graph

    def test_one_hop_neighbors(self, graph):
        neighbors = graph.neighbors("Solomon", hops=1)
        assert "david" in neighbors
        assert "bathsheba" not in neighbors

    def test_two_hop_neighbors(self, graph):
        neighbors = graph.neighbors("Solomon", hops=2)
        assert "bathsheba" in neighbors

    def test_related_words(self, graph):
        words = graph.related_words("Solomon", hops=2)
        assert "bathsheba" in words
        assert "david" in words

    def test_relation_path(self, graph):
        path = graph.relation_path("Solomon", "Bathsheba")
        assert path is not None
        assert len(path) == 2
        assert "child_of" in path[0]

    def test_no_path(self, graph):
        graph2 = KnowledgeGraph()
        graph2.add_entity("alone")
        graph2.add_relation("x", "r", "y")
        assert graph2.relation_path("alone", "x") is None

    def test_unknown_entity_path(self, graph):
        assert graph.relation_path("Solomon", "Zeus") is None

    def test_empty_entity_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph().add_entity("   ")

    def test_invalid_hops(self, graph):
        with pytest.raises(ValueError):
            graph.neighbors("Solomon", hops=0)

    def test_graph_from_kb(self):
        kb = KnowledgeBase(seed=1, n_people=10, n_teams=4, n_cities=6)
        graph = graph_from_kb(kb)
        person = kb.people[0]
        birth_city = person.attributes["birth_city"].lower()
        assert birth_city in graph.neighbors(person.name)

    def test_knowledge_enhanced_qws(self):
        from repro.core import QuestionRelevantWordsSelector
        from repro.text.tokenizer import tokenize

        graph = KnowledgeGraph()
        graph.add_relation("Solomon", "child_of", "David")
        graph.add_relation("David", "married_to", "Bathsheba")
        qws_plain = QuestionRelevantWordsSelector()
        qws_knowing = QuestionRelevantWordsSelector(
            knowledge=graph, knowledge_hops=2
        )
        tokens = tokenize("Bathsheba raised her son in the palace.")
        question = "Who was the mother of Solomon?"
        plain = qws_plain.select(question, tokens)
        knowing = qws_knowing.select(question, tokens)
        assert "Bathsheba" not in plain.clue_words
        assert "Bathsheba" in knowing.clue_words


class TestBatchDistiller:
    def test_results_match_single(self, gced):
        batch = BatchDistiller(gced)
        triples = [(q, a, c) for q, a, c in QA_CASES[:3]]
        results = batch.distill_many(triples)
        for (question, answer, context), result in zip(triples, results):
            single = gced.distill(question, answer, context)
            assert result.evidence == single.evidence

    def test_preserves_input_order(self, gced):
        batch = BatchDistiller(gced)
        triples = [(q, a, c) for q, a, c in QA_CASES[:4]]
        results = batch.distill_many(triples)
        for (question, answer, _context), result in zip(triples, results):
            # The evidence must belong to its own QA pair: the answer's
            # first normalized word appears in the evidence.
            from repro.text.normalize import normalize_answer

            word = normalize_answer(answer).split()[0]
            assert word in normalize_answer(result.evidence)

    def test_cache_hits_on_repeat(self, gced):
        batch = BatchDistiller(gced)
        question, answer, context = QA_CASES[0]
        batch.distill_one(question, answer, context)
        batch.distill_one(question, answer, context)
        stats = batch.stats()
        assert stats.n_distilled == 1
        assert stats.n_cache_hits == 1

    def test_stats_summary(self, gced):
        batch = BatchDistiller(gced)
        batch.distill_one(*[QA_CASES[1][i] for i in (0, 1, 2)])
        summary = batch.stats().summary()
        assert "distilled" in summary and "ms/example" in summary


class TestSerialize:
    def test_round_trip_jsonl(self, gced, tmp_path):
        path = tmp_path / "results.jsonl"
        items = []
        for question, answer, context in QA_CASES[:3]:
            items.append((question, answer, gced.distill(question, answer, context)))
        count = write_results_jsonl(path, items)
        assert count == 3
        loaded = read_results_jsonl(path)
        assert len(loaded) == 3
        for (question, answer, result), row in zip(items, loaded):
            assert row["question"] == question
            assert row["evidence"] == result.evidence
            assert row["scores"]["hybrid"] == pytest.approx(result.scores.hybrid)

    def test_invalid_scores_become_null(self, gced):
        from repro.core.pipeline import DistillationResult
        from repro.core.ase import ASEResult
        from repro.core.qws import QWSResult
        from repro.metrics.hybrid import EvidenceScores

        empty = DistillationResult(
            evidence="",
            scores=EvidenceScores(0.0, float("-inf"), 0.0, float("-inf")),
            ase=ASEResult((), "", False, 0.0, 0),
            qws=QWSResult((), frozenset(), (), {}),
            forest_size=0,
        )
        payload = result_to_dict(empty)
        assert payload["scores"]["conciseness"] is None
        assert payload["scores"]["hybrid"] is None

    def test_trace_serialized(self, gced):
        question, answer, context = QA_CASES[2]
        result = gced.distill(question, answer, context)
        payload = result_to_dict(result, question, answer)
        assert isinstance(payload["clip_steps"], list)
        assert payload["clue_words"]


class TestViz:
    def test_render_tree_markers(self, gced):
        question, answer, context = QA_CASES[2]
        result = gced.distill(question, answer, context)
        tree = gced.wsptc.build(result.aos_tokens)
        text = render_tree(
            tree, kept=result.evidence_nodes, protected=frozenset()
        )
        assert "+ " in text or "* " in text
        assert f"{tree.root}-{tree.token(tree.root)}" in text

    def test_render_distillation_sections(self, gced):
        question, answer, context = QA_CASES[0]
        result = gced.distill(question, answer, context)
        report = render_distillation(result)
        for section in ("Answer-oriented", "clue words", "Evidence", "Scores"):
            assert section in report

    def test_evidence_html_highlights(self, gced):
        question, answer, context = QA_CASES[0]
        result = gced.distill(question, answer, context)
        markup = evidence_html(question, answer, context, result)
        assert "<mark" in markup
        assert 'class="answer"' in markup
        assert "Denver" in markup

    def test_evidence_html_escapes(self, gced):
        question, answer, context = QA_CASES[0]
        result = gced.distill(question, answer, context)
        markup = evidence_html("<script>?", answer, context, result)
        assert "<script>" not in markup
