"""Unit tests for sliding-window QA, metric aggregation, and the report."""

import pytest

from repro.metrics import bootstrap_diff, summarize
from repro.qa import SlidingWindowQA
from tests.conftest import CORPUS


class TestSlidingWindowQA:
    def test_short_context_delegates(self, artifacts):
        sliding = SlidingWindowQA(artifacts.reader, window_tokens=128)
        question = "Who led the Norman conquest of England?"
        direct = artifacts.reader.predict(question, CORPUS[2])
        wrapped = sliding.predict(question, CORPUS[2])
        assert wrapped.text == direct.text

    def test_long_context_finds_answer(self, artifacts):
        sliding = SlidingWindowQA(artifacts.reader, window_tokens=24, stride=12)
        # Bury the supporting sentence in a long assembled context.
        long_context = " ".join([CORPUS[0], CORPUS[1], CORPUS[2], CORPUS[3]])
        pred = sliding.predict(
            "Who led the Norman conquest of England?", long_context
        )
        assert "William" in pred.text

    def test_offsets_are_global(self, artifacts):
        sliding = SlidingWindowQA(artifacts.reader, window_tokens=24, stride=12)
        long_context = " ".join([CORPUS[0], CORPUS[2]])
        pred = sliding.predict(
            "When was the Battle of Hastings?", long_context
        )
        assert long_context[pred.start : pred.end] == pred.text

    def test_windows_cover_context(self, artifacts):
        sliding = SlidingWindowQA(artifacts.reader, window_tokens=10, stride=5)
        context = " ".join(f"word{i}" for i in range(40)) + "."
        ranges = sliding._windows(context)
        assert ranges[0][0] == 0
        assert ranges[-1][1] >= context.rindex("word39")
        for (a_lo, _a_hi), (b_lo, _b_hi) in zip(ranges, ranges[1:]):
            assert b_lo > a_lo  # strictly advancing

    def test_invalid_params(self, artifacts):
        with pytest.raises(ValueError):
            SlidingWindowQA(artifacts.reader, window_tokens=4)
        with pytest.raises(ValueError):
            SlidingWindowQA(artifacts.reader, window_tokens=16, stride=0)

    def test_empty_context(self, artifacts):
        sliding = SlidingWindowQA(artifacts.reader)
        assert sliding.predict("Who?", "").is_empty


class TestAggregate:
    def test_summarize(self):
        summary = summarize("f1", [0.8, 0.9, 1.0, 0.7])
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.n == 4
        assert "f1" in str(summary)

    def test_summarize_single_value(self):
        summary = summarize("x", [0.5])
        assert summary.mean == summary.ci_low == summary.ci_high == 0.5

    def test_bootstrap_detects_difference(self):
        a = [1.0] * 30
        b = [0.0] * 30
        diff, p_worse = bootstrap_diff(a, b, n_resamples=200)
        assert diff == pytest.approx(1.0)
        assert p_worse == 0.0

    def test_bootstrap_no_difference(self):
        a = [0.5, 0.6, 0.4] * 10
        diff, p_worse = bootstrap_diff(a, a, n_resamples=200)
        assert diff == pytest.approx(0.0)
        assert p_worse == 1.0  # ties count as <=

    def test_bootstrap_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_diff([], [])

    def test_bootstrap_deterministic(self):
        a, b = [1.0, 0.8, 0.9] * 5, [0.7, 0.75, 0.8] * 5
        r1 = bootstrap_diff(a, b, seed=3)
        r2 = bootstrap_diff(a, b, seed=3)
        assert r1 == r2


class TestReport:
    @pytest.fixture(scope="class")
    def ctx(self):
        from repro.eval import ExperimentContext

        return ExperimentContext.build("squad11", seed=0, n_train=30, n_dev=16)

    def test_report_sections(self, ctx):
        from repro.eval.report import build_report

        report = build_report(ctx, n_examples=8)
        for section in (
            "Rater agreement",
            "Human evaluation",
            "QA augmentation",
            "Degradation",
            "Word reduction",
            "Error triage",
        ):
            assert section in report

    def test_write_report(self, ctx, tmp_path):
        from repro.eval.report import write_report

        path = write_report(ctx, tmp_path / "report.md", n_examples=8)
        assert path.exists()
        assert path.read_text().startswith("# GCED evaluation report")
