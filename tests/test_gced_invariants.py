"""Pipeline-level invariants, checked across a generated dataset.

These are the contracts a downstream consumer relies on, verified over
dozens of real distillations rather than hand-picked cases:

1. evidence tokens are a subset of the answer-oriented sentences' tokens,
   in original order;
2. protected forest material (clue + answer words) is never clipped;
3. reduction is in [0, 1) and consistent with the actual word counts;
4. scores lie in their documented ranges;
5. distillation is deterministic.
"""

import pytest

from repro import GCED, QATrainer
from repro.datasets import load_dataset
from repro.text.normalize import normalize_answer
from repro.text.tokenizer import tokenize, word_tokens


@pytest.fixture(scope="module")
def setup():
    dataset = load_dataset("squad11", seed=5, n_train=40, n_dev=30)
    artifacts = QATrainer(seed=0).train(dataset.contexts())
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    examples = dataset.answerable_dev()[:25]
    results = [
        gced.distill(e.question, e.primary_answer, e.context) for e in examples
    ]
    return gced, examples, results


class TestEvidenceTokenInvariants:
    def test_evidence_is_ordered_subsequence_of_aos(self, setup):
        _gced, _examples, results = setup
        for result in results:
            if not result.evidence or not result.evidence_nodes:
                continue
            aos_words = [t.text for t in result.aos_tokens]
            kept = [aos_words[i] for i in sorted(result.evidence_nodes)]
            evidence_tokens = [t.text for t in tokenize(result.evidence)]
            assert evidence_tokens == kept

    def test_protected_nodes_survive(self, setup):
        gced, examples, results = setup
        for example, result in zip(examples, results):
            if not result.evidence_nodes:
                continue
            answer_indices = gced.efc.find_answer_indices(
                result.aos_tokens, example.primary_answer
            )
            clue_indices = result.qws.clue_indices
            protected = set(answer_indices) | set(clue_indices)
            # All protected indices that entered the forest stay kept.
            assert protected <= result.evidence_nodes

    def test_answer_present_in_evidence(self, setup):
        _gced, examples, results = setup
        present = 0
        for example, result in zip(examples, results):
            if not result.evidence:
                continue
            first = normalize_answer(example.primary_answer).split()[0]
            if first in normalize_answer(result.evidence):
                present += 1
        assert present >= 0.9 * len(results)


class TestScoreInvariants:
    def test_reduction_consistent(self, setup):
        _gced, examples, results = setup
        for example, result in zip(examples, results):
            if not result.evidence:
                continue
            n_ctx = len(word_tokens(example.context))
            n_ev = len(word_tokens(result.evidence))
            expected = 1.0 - n_ev / n_ctx
            assert result.reduction == pytest.approx(expected)
            assert 0.0 <= result.reduction < 1.0

    def test_score_ranges(self, setup):
        _gced, _examples, results = setup
        for result in results:
            scores = result.scores
            if not scores.is_valid:
                continue
            assert 0.0 <= scores.informativeness <= 1.0
            assert 0.0 < scores.conciseness <= 1.0
            assert 0.0 <= scores.readability <= 1.0
            assert 0.0 <= scores.hybrid <= 1.0

    def test_clip_trace_bounded_by_config(self, setup):
        gced, _examples, results = setup
        for result in results:
            assert len(result.clip_trace) <= gced.config.clip_times


class TestDeterminism:
    def test_distill_deterministic(self, setup):
        gced, examples, results = setup
        for example, result in zip(examples[:5], results[:5]):
            again = gced.distill(
                example.question, example.primary_answer, example.context
            )
            assert again.evidence == result.evidence
            assert again.scores == result.scores

    def test_fresh_pipeline_same_output(self, setup):
        gced, examples, results = setup
        artifacts = QATrainer(seed=0).train(
            load_dataset("squad11", seed=5, n_train=40, n_dev=30).contexts()
        )
        fresh = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        for example, result in zip(examples[:5], results[:5]):
            again = fresh.distill(
                example.question, example.primary_answer, example.context
            )
            assert again.evidence == result.evidence
