"""Unit tests for the evidence-extraction baselines."""

import pytest

from repro.baselines import (
    FullContextBaseline,
    RandomSpanBaseline,
    SentenceSelectorBaseline,
    WindowBaseline,
)
from repro.text.tokenizer import word_tokens
from tests.conftest import CORPUS, QA_CASES


class TestFullContext:
    def test_identity(self):
        baseline = FullContextBaseline()
        assert baseline.extract("q", "a", CORPUS[0]) == CORPUS[0]


class TestWindow:
    def test_window_contains_answer(self):
        baseline = WindowBaseline(window=5)
        question, answer, context = QA_CASES[3]
        evidence = baseline.extract(question, answer, context)
        assert answer in evidence

    def test_window_shorter_than_context(self):
        baseline = WindowBaseline(window=4)
        question, answer, context = QA_CASES[0]
        evidence = baseline.extract(question, answer, context)
        assert len(word_tokens(evidence)) < len(word_tokens(context))

    def test_missing_answer_falls_back_to_center(self):
        baseline = WindowBaseline(window=3)
        evidence = baseline.extract("q", "zzz", "one two three four five six seven.")
        assert evidence

    def test_empty_context(self):
        assert WindowBaseline().extract("q", "a", "") == ""

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowBaseline(window=0)


class TestRandomSpan:
    def test_returns_a_sentence(self):
        baseline = RandomSpanBaseline(seed=1)
        evidence = baseline.extract("q", "a", CORPUS[0])
        assert evidence in CORPUS[0]

    def test_deterministic(self):
        b1 = RandomSpanBaseline(seed=5)
        b2 = RandomSpanBaseline(seed=5)
        assert b1.extract("q", "a", CORPUS[1]) == b2.extract("q", "a", CORPUS[1])


class TestSentenceSelector:
    def test_selects_supporting_sentence(self, artifacts):
        baseline = SentenceSelectorBaseline(artifacts.reader)
        question, answer, context = QA_CASES[2]
        evidence = baseline.extract(question, answer, context)
        assert "Norman conquest" in evidence

    def test_whole_sentences_only(self, artifacts):
        baseline = SentenceSelectorBaseline(artifacts.reader)
        question, answer, context = QA_CASES[0]
        evidence = baseline.extract(question, answer, context)
        from repro.text.sentences import split_sentences

        context_sentences = {s.text for s in split_sentences(context)}
        for sentence in split_sentences(evidence):
            assert sentence.text in context_sentences

    def test_gced_more_concise_than_sentence_selector(self, artifacts, gced):
        baseline = SentenceSelectorBaseline(artifacts.reader)
        shorter = 0
        for question, answer, context in QA_CASES:
            sentence_ev = baseline.extract(question, answer, context)
            gced_ev = gced.distill(question, answer, context).evidence
            if len(word_tokens(gced_ev)) <= len(word_tokens(sentence_ev)):
                shorter += 1
        assert shorter >= len(QA_CASES) - 1
