"""Unit tests for the five GCED core modules and the pipeline."""

import pytest

from repro import GCED, GCEDConfig
from repro.core import (
    AnswerOrientedSentenceExtractor,
    EvidenceForestConstructor,
    QuestionRelevantWordsSelector,
    WeightedTreeConstructor,
)
from repro.core.oec import OptimalEvidenceDistiller
from repro.metrics.hybrid import HybridScorer
from repro.metrics.informativeness import InformativenessScorer
from repro.metrics.readability import ReadabilityScorer
from repro.parsing import SyntacticParser
from repro.text.tokenizer import tokenize
from tests.conftest import CORPUS, QA_CASES


class TestASE:
    @pytest.fixture(scope="class")
    def ase(self, artifacts):
        return AnswerOrientedSentenceExtractor(artifacts.reader)

    def test_selects_answer_sentence(self, ase):
        result = ase.extract(
            "Who led the Norman conquest of England?",
            "William the Conqueror",
            CORPUS[2],
        )
        assert "Norman conquest" in result.text
        assert result.sentences_tried >= 1

    def test_sentences_in_document_order(self, ase):
        result = ase.extract(
            "Where was Beyonce born?", "Houston, Texas", CORPUS[1]
        )
        indices = [s.index for s in result.sentences]
        assert indices == sorted(indices)

    def test_recovered_flag(self, ase):
        result = ase.extract(
            "When was the Battle of Hastings?", "1066", CORPUS[2]
        )
        assert result.recovered
        assert result.overlap == 1.0

    def test_empty_context(self, ase):
        result = ase.extract("Who?", "x", "")
        assert result.text == ""
        assert result.sentences == ()

    def test_passthrough_keeps_everything(self, ase):
        result = ase.passthrough(CORPUS[0])
        assert len(result.sentences) == 3

    def test_max_sentences_cap(self, artifacts):
        ase = AnswerOrientedSentenceExtractor(artifacts.reader, max_sentences=1)
        result = ase.extract(
            "Who led the Norman conquest of England?",
            "William the Conqueror",
            CORPUS[2],
        )
        assert len(result.sentences) == 1

    def test_invalid_max(self, artifacts):
        with pytest.raises(ValueError):
            AnswerOrientedSentenceExtractor(artifacts.reader, max_sentences=0)


class TestQWS:
    @pytest.fixture(scope="class")
    def qws(self):
        return QuestionRelevantWordsSelector()

    def test_significant_words_filtered(self, qws):
        words = qws.significant_question_words(
            "Which NFL team represented the AFC at Super Bowl 50?"
        )
        assert "Which" not in words and "the" not in words
        assert "NFL" in words and "team" in words

    def test_direct_match(self, qws):
        tokens = tokenize("The team earned the Super Bowl title.")
        result = qws.select("Which team won the Super Bowl title?", tokens)
        assert "team" in {w.lower() for w in result.clue_words}

    def test_synonym_match(self, qws):
        tokens = tokenize("The Broncos earned the trophy.")
        result = qws.select("Who won the game?", tokens)
        # "won" -> synonym "earn(ed)"
        assert any(w.lower().startswith("earn") for w in result.clue_words)

    def test_sibling_match(self, qws):
        tokens = tokenize("The Conference champion celebrated.")
        result = qws.select("Which team was it?", tokens)
        # "team" and "conference" share the organization hypernym.
        assert "Conference" in result.clue_words

    def test_inflection_match(self, qws):
        tokens = tokenize("She performed in competitions.")
        result = qws.select("What did she perform in?", tokens)
        assert "performed" in result.clue_words

    def test_no_matches(self, qws):
        tokens = tokenize("Completely unrelated words here.")
        result = qws.select("Which team won the title?", tokens)
        assert result.clue_indices == frozenset()

    def test_empty_ablation(self, qws):
        assert qws.empty().clue_indices == frozenset()

    def test_matches_trace(self, qws):
        tokens = tokenize("The team played football.")
        result = qws.select("Which team played?", tokens)
        assert "team" in result.matches


class TestWSPTCAndEFC:
    @pytest.fixture(scope="class")
    def tree(self, artifacts):
        wsptc = WeightedTreeConstructor(SyntacticParser(), artifacts.attention)
        tokens = tokenize(
            "William the Conqueror led the Norman conquest of England. "
            "He was a duke from Normandy."
        )
        return wsptc.build(tokens)

    def test_single_connected_tree(self, tree):
        roots = [i for i in range(len(tree)) if tree.parent(i) == -1]
        assert len(roots) == 1

    def test_edge_weights_positive(self, tree):
        weighted = [tree.weight(i) for i in range(len(tree)) if tree.parent(i) != -1]
        assert all(w > 0 for w in weighted)

    def test_empty_rejected(self, artifacts):
        wsptc = WeightedTreeConstructor(SyntacticParser(), artifacts.attention)
        with pytest.raises(ValueError):
            wsptc.build([])

    def test_forest_components_connected(self, tree):
        efc = EvidenceForestConstructor()
        forest = efc.build(tree, frozenset({1, 5}), frozenset({8}))
        for comp, root in zip(forest.components, forest.roots):
            assert root in comp
            for node in comp:
                if node != root:
                    assert tree.parent(node) in comp

    def test_forest_protects_marked_nodes(self, tree):
        efc = EvidenceForestConstructor()
        forest = efc.build(tree, frozenset({1}), frozenset({8}))
        assert {1, 8} <= set(forest.protected)

    def test_answer_components_flagged(self, tree):
        efc = EvidenceForestConstructor()
        forest = efc.build(tree, frozenset({1}), frozenset({8}))
        flagged = set()
        for idx in forest.answer_components:
            flagged |= set(forest.components[idx])
        assert 8 in flagged

    def test_find_answer_indices_contiguous(self, tree):
        efc = EvidenceForestConstructor()
        tokens = tokenize("William the Conqueror led the conquest")
        indices = efc.find_answer_indices(tokens, "William the Conqueror")
        assert indices == frozenset({0, 1, 2})

    def test_find_answer_indices_loose(self):
        efc = EvidenceForestConstructor()
        tokens = tokenize("Conqueror William led the army")
        indices = efc.find_answer_indices(tokens, "William the Conqueror")
        assert {0, 1} <= set(indices)

    def test_find_answer_empty(self):
        efc = EvidenceForestConstructor()
        assert efc.find_answer_indices(tokenize("a b"), "") == frozenset()


class TestOEC:
    @pytest.fixture(scope="class")
    def setup(self, artifacts):
        wsptc = WeightedTreeConstructor(SyntacticParser(), artifacts.attention)
        tokens = tokenize(CORPUS[2].split(". ")[0] + ".")
        tree = wsptc.build(tokens)
        efc = EvidenceForestConstructor()
        qws = QuestionRelevantWordsSelector()
        question = "Who led the Norman conquest of England?"
        answer = "William the Conqueror"
        clues = qws.select(question, tokenize(tree_text(tree))).clue_indices
        answer_idx = efc.find_answer_indices(tokenize(tree_text(tree)), answer)
        forest = efc.build(tree, clues, answer_idx)
        scorer = HybridScorer(
            informativeness=InformativenessScorer(artifacts.reader),
            readability=ReadabilityScorer(artifacts.language_model),
        )
        oec = OptimalEvidenceDistiller(scorer, clip_times=2)
        return oec, forest, question, answer

    def test_grow_yields_single_tree(self, setup):
        oec, forest, _q, _a = setup
        nodes, root, trace = oec.grow(forest)
        assert root in nodes
        # Grown evidence is a full subtree of the underlying tree.
        assert nodes == forest.tree.subtree(root)

    def test_clip_never_removes_protected(self, setup):
        oec, forest, question, answer = setup
        nodes, root, _trace = oec.grow(forest)
        clipped, trace = oec.clip(
            forest.tree, nodes, root, forest.protected, question, answer
        )
        assert set(forest.protected) <= clipped

    def test_clip_respects_budget(self, setup):
        oec, forest, question, answer = setup
        nodes, root, _ = oec.grow(forest)
        _clipped, trace = oec.clip(
            forest.tree, nodes, root, forest.protected, question, answer
        )
        assert len(trace) <= oec.clip_times

    def test_distill_renders_in_order(self, setup):
        oec, forest, question, answer = setup
        text, nodes, _g, _c = oec.distill(forest, question, answer)
        rendered = forest.tree.text_of(nodes)
        for a, b in zip(rendered, rendered[1:]):
            pass  # order validated by construction of text_of
        assert text

    def test_without_grow_keeps_fragments(self, setup):
        oec, forest, question, answer = setup
        text, nodes, grow_trace, _c = oec.distill(
            forest, question, answer, use_grow=False
        )
        assert grow_trace == []
        assert nodes == set().union(*forest.components)

    def test_invalid_clip_times(self, setup):
        oec, *_ = setup
        with pytest.raises(ValueError):
            OptimalEvidenceDistiller(oec.scorer, clip_times=-1)


def tree_text(tree):
    return " ".join(tree.tokens)


class TestPipeline:
    def test_all_cases_produce_valid_evidence(self, gced):
        from repro.text.normalize import normalize_answer

        for question, answer, context in QA_CASES:
            result = gced.distill(question, answer, context)
            assert result.evidence, question
            assert result.scores.is_valid
            first_word = normalize_answer(answer).split()[0]
            assert first_word in normalize_answer(result.evidence)

    def test_reduction_positive(self, gced):
        question, answer, context = QA_CASES[0]
        result = gced.distill(question, answer, context)
        assert 0 < result.reduction < 1

    def test_empty_answer_gives_empty_result(self, gced):
        result = gced.distill("Who?", "  ", CORPUS[0])
        assert result.evidence == ""
        assert not result.scores.is_valid

    def test_empty_context_rejected(self, gced):
        with pytest.raises(ValueError):
            gced.distill("Who?", "x", "   ")

    def test_explain_contains_trace(self, gced):
        question, answer, context = QA_CASES[3]
        result = gced.distill(question, answer, context)
        report = result.explain()
        assert "clue words" in report
        assert "evidence:" in report

    def test_evidence_tokens_subset_of_aos(self, gced):
        question, answer, context = QA_CASES[2]
        result = gced.distill(question, answer, context)
        aos_words = {t.text for t in result.aos_tokens}
        from repro.text.tokenizer import tokenize as tok

        for token in tok(result.evidence):
            assert token.text in aos_words


class TestConfig:
    def test_ablate_returns_copy(self):
        config = GCEDConfig()
        ablated = config.ablate("ase")
        assert not ablated.use_ase and config.use_ase

    def test_ablate_unknown(self):
        with pytest.raises(KeyError):
            GCEDConfig().ablate("xyz")

    def test_effective_weights_renormalize(self):
        config = GCEDConfig().ablate("i")
        weights = config.effective_weights()
        assert weights.alpha == 0.0
        assert weights.beta + weights.gamma == pytest.approx(1.0)

    def test_all_criteria_disabled_rejected(self):
        with pytest.raises(ValueError):
            GCEDConfig(
                use_informativeness=False,
                use_conciseness=False,
                use_readability=False,
            )

    def test_invalid_clip_times(self):
        with pytest.raises(ValueError):
            GCEDConfig(clip_times=-1)

    def test_ablations_change_output(self, artifacts):
        question, answer, context = QA_CASES[0]
        full = GCED(artifacts.reader, artifacts).distill(question, answer, context)
        no_clip = GCED(
            artifacts.reader, artifacts, config=GCEDConfig().ablate("clip")
        ).distill(question, answer, context)
        assert len(no_clip.evidence) >= len(full.evidence)
