"""Unit tests for the parsing substrate: POS, grammar, CKY, heads, deps."""

import pytest

from repro.parsing import (
    CKYParser,
    DependencyTree,
    PosTagger,
    SyntacticParser,
    default_grammar,
)
from repro.parsing.grammar import Rule
from repro.parsing.heads import lexicalize
from repro.text.tokenizer import tokenize


def toks(text):
    return [t.text for t in tokenize(text)]


class TestPosTagger:
    @pytest.fixture(scope="class")
    def tagger(self):
        return PosTagger()

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("The cat", ["DT", "NN"]),
            ("Denver Broncos", ["NNP", "NNP"]),
            ("quickly ran", ["RB", "VBD"]),
            ("in 1066", ["IN", "CD"]),
            ("she sang", ["PRP", "VBD"]),
        ],
    )
    def test_basic_tags(self, tagger, text, expected):
        assert tagger.tag(toks(text)) == expected

    def test_punctuation(self, tagger):
        assert tagger.tag(["."]) == ["PUNCT"]

    def test_plural_noun_after_determiner(self, tagger):
        tags = tagger.tag(toks("the records"))
        assert tags == ["DT", "NNS"]

    def test_verb_inflection(self, tagger):
        assert tagger.tag(["defeated"]) == ["VBD"]
        assert tagger.tag(["performing"]) == ["VBG"]

    def test_suffix_heuristics(self, tagger):
        assert tagger.tag(["information"]) == ["NN"]
        assert tagger.tag(["beautiful"]) == ["JJ"]

    def test_extra_verbs(self):
        tagger = PosTagger(extra_verbs={"zorple"})
        assert tagger.tag(["zorple"]) == ["VBD"]

    def test_that_disambiguation(self, tagger):
        assert tagger.tag(toks("that battle"))[0] == "DT"
        assert tagger.tag(toks("said that she sang"))[1] == "IN"


class TestGrammar:
    def test_default_grammar_normalized(self):
        issues = default_grammar().validate()
        assert issues == [], issues

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            Rule("A", ("B", "C", "D"), 0.5)
        with pytest.raises(ValueError):
            Rule("A", ("B",), 0.0)

    def test_terminals_are_tags(self):
        grammar = default_grammar()
        assert "NN" in grammar.terminals
        assert "NP" not in grammar.terminals


class TestCKY:
    @pytest.fixture(scope="class")
    def parser(self):
        return CKYParser()

    def test_simple_sentence_parses_to_top(self, parser):
        tree = parser.parse_tags(["DT", "NN", "VBD", "DT", "NN", "PUNCT"])
        assert tree.label == "TOP"

    def test_leaves_preserve_order(self, parser):
        words = ["The", "duke", "led", "the", "conquest", "."]
        tags = ["DT", "NN", "VBD", "DT", "NN", "PUNCT"]
        tree = parser.parse_tags(tags, words=words)
        assert [leaf.word for leaf in tree.leaves()] == words

    def test_every_input_gets_a_tree(self, parser):
        # A tag soup that the linguistic grammar cannot fully cover.
        tags = ["CC", "CC", "PUNCT", "CC"]
        tree = parser.parse_tags(tags)
        assert len(tree.leaves()) == 4

    def test_empty_rejected(self, parser):
        with pytest.raises(ValueError):
            parser.parse_tags([])

    def test_mismatched_words_rejected(self, parser):
        with pytest.raises(ValueError):
            parser.parse_tags(["NN"], words=["a", "b"])

    def test_single_token(self, parser):
        tree = parser.parse_tags(["NN"], words=["cat"])
        assert [l.word for l in tree.leaves()] == ["cat"]


class TestLexicalize:
    def test_head_assignment(self):
        parser = CKYParser()
        words = ["The", "duke", "led", "the", "conquest"]
        tree = parser.parse_tags(["DT", "NN", "VBD", "DT", "NN"], words=words)
        head = lexicalize(tree)
        assert words[head] == "led"  # VP heads S

    def test_all_nodes_have_heads(self):
        parser = CKYParser()
        tree = parser.parse_tags(["DT", "NN", "VBD", "NNP"], words=["the", "duke", "saw", "France"])
        lexicalize(tree)
        for node in tree:
            assert node.head is not None


class TestDependencyTree:
    def test_construction_and_queries(self):
        tree = DependencyTree(["a", "b", "c"], [1, -1, 1])
        assert tree.root == 1
        assert tree.children(1) == [0, 2]
        assert tree.parent(0) == 1
        assert tree.siblings(0) == [2]

    def test_subtree(self):
        tree = DependencyTree(["a", "b", "c", "d"], [1, -1, 1, 2])
        assert tree.subtree(2) == {2, 3}
        assert tree.subtree(1) == {0, 1, 2, 3}

    def test_depth_and_ancestors(self):
        tree = DependencyTree(["a", "b", "c"], [-1, 0, 1])
        assert tree.depth(2) == 2
        assert tree.ancestors(2) == [1, 0]

    def test_is_ancestor(self):
        tree = DependencyTree(["a", "b", "c"], [-1, 0, 1])
        assert tree.is_ancestor(0, 2)
        assert not tree.is_ancestor(2, 0)

    def test_text_of_sorted(self):
        tree = DependencyTree(["x", "y", "z"], [-1, 0, 0])
        assert tree.text_of({2, 0}) == ["x", "z"]

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError):
            DependencyTree(["a", "b"], [-1, -1])

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError):
            DependencyTree(["a", "b"], [-1, 1])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            DependencyTree(["a", "b", "c"], [1, 2, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DependencyTree(["a"], [-1, 0])

    def test_weights_settable(self):
        tree = DependencyTree(["a", "b"], [-1, 0])
        tree.set_weight(1, 0.7)
        assert tree.weight(1) == pytest.approx(0.7)

    def test_to_dot_contains_nodes(self):
        tree = DependencyTree(["a", "b"], [-1, 0])
        dot = tree.to_dot()
        assert "0-a" in dot and "1-b" in dot


class TestSyntacticParser:
    @pytest.fixture(scope="class")
    def parser(self):
        return SyntacticParser()

    def test_parse_produces_valid_tree(self, parser):
        tree = parser.parse(toks("The duke led the conquest of England."))
        assert len(tree) == 8
        assert tree.token(tree.root) == "led"

    def test_compound_right_headed(self, parser):
        tree = parser.parse(toks("Denver Broncos won the title."))
        broncos = 1
        assert tree.parent(0) == broncos  # Denver -> Broncos

    def test_caching_returns_same_object(self, parser):
        t1 = parser.parse(["The", "cat", "sat"])
        t2 = parser.parse(["The", "cat", "sat"])
        assert t1 is t2

    def test_empty_rejected(self, parser):
        with pytest.raises(ValueError):
            parser.parse([])
