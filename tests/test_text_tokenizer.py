"""Unit tests for the span-preserving tokenizer."""

from repro.text.tokenizer import Token, detokenize, tokenize, word_tokens


class TestTokenize:
    def test_simple_sentence(self):
        tokens = tokenize("The cat sat.")
        assert [t.text for t in tokens] == ["The", "cat", "sat", "."]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []

    def test_char_offsets_roundtrip(self):
        text = "Denver Broncos defeated the Panthers, 24-10!"
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_indices_sequential(self):
        tokens = tokenize("a b c d")
        assert [t.index for t in tokens] == [0, 1, 2, 3]

    def test_hyphenated_word_kept_whole(self):
        tokens = tokenize("Knowles-Carter sang.")
        assert tokens[0].text == "Knowles-Carter"

    def test_apostrophe_contraction(self):
        tokens = tokenize("didn't stop")
        assert tokens[0].text == "didn't"

    def test_numbers_with_separators(self):
        tokens = tokenize("Population reached 1,533,000 in 1876.")
        texts = [t.text for t in tokens]
        assert "1,533,000" in texts
        assert "1876" in texts

    def test_percentage(self):
        assert "78.5%" in [t.text for t in tokenize("about 78.5% of words")]

    def test_punctuation_split(self):
        texts = [t.text for t in tokenize("(AFC) champion")]
        assert texts[:3] == ["(", "AFC", ")"]

    def test_is_word_flag(self):
        tokens = tokenize("Hello, world!")
        assert tokens[0].is_word and tokens[2].is_word
        assert not tokens[1].is_word and not tokens[3].is_word

    def test_lower_property(self):
        assert tokenize("DeNVer")[0].lower == "denver"


class TestWordTokens:
    def test_drops_punctuation(self):
        assert word_tokens("Hello, world!") == ["hello", "world"]

    def test_empty(self):
        assert word_tokens("...") == []


class TestDetokenize:
    def test_basic_join(self):
        assert detokenize(["the", "cat"]) == "the cat"

    def test_closing_punctuation_attaches(self):
        assert detokenize(["Hello", ",", "world", "!"]) == "Hello, world!"

    def test_open_paren_attaches_forward(self):
        assert detokenize(["champion", "(", "AFC", ")"]) == "champion (AFC)"

    def test_empty_list(self):
        assert detokenize([]) == ""

    def test_single_token(self):
        assert detokenize(["word"]) == "word"

    def test_roundtrip_tokens(self):
        text = "The Broncos won the title."
        rebuilt = detokenize([t.text for t in tokenize(text)])
        assert rebuilt == text


class TestToken:
    def test_frozen(self):
        token = Token("a", 0, 1, 0)
        try:
            token.text = "b"
            assert False, "Token should be immutable"
        except AttributeError:
            pass
