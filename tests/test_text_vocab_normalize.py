"""Unit tests for Vocabulary, normalization and stemming."""

import pytest

from repro.text.normalize import normalize_answer, normalize_token
from repro.text.stem import light_stem
from repro.text.vocab import CLS, PAD, SEP, UNK, Vocabulary


class TestVocabulary:
    def test_specials_reserved(self):
        vocab = Vocabulary()
        assert vocab.id_of(PAD) == 0
        assert vocab.id_of(UNK) == 1
        assert vocab.id_of(SEP) == 2
        assert vocab.id_of(CLS) == 3

    def test_build_and_encode(self):
        vocab = Vocabulary.build([["a", "b", "a"], ["a", "c"]])
        assert "a" in vocab
        ids = vocab.encode(["a", "zzz"])
        assert ids[1] == vocab.unk_id

    def test_decode_roundtrip(self):
        vocab = Vocabulary.build([["alpha", "beta"]])
        assert vocab.decode(vocab.encode(["alpha", "beta"])) == ["alpha", "beta"]

    def test_min_count_filters(self):
        vocab = Vocabulary.build([["rare", "common", "common"]], min_count=2)
        assert "common" in vocab
        assert "rare" not in vocab

    def test_max_size(self):
        vocab = Vocabulary.build([["a", "a", "b", "c"]], max_size=5)
        assert len(vocab) == 5  # 4 specials + 1 token
        assert "a" in vocab

    def test_pad_to(self):
        vocab = Vocabulary.build([["x"]])
        padded = vocab.pad_to([7, 8], 4)
        assert padded == [7, 8, vocab.pad_id, vocab.pad_id]
        assert vocab.pad_to([1, 2, 3], 2) == [1, 2]

    def test_frequency_ordering(self):
        vocab = Vocabulary.build([["rare"], ["freq", "freq", "freq"]])
        assert vocab.id_of("freq") < vocab.id_of("rare")


class TestNormalizeAnswer:
    def test_lowercase_and_articles(self):
        assert normalize_answer("The Denver Broncos") == "denver broncos"

    def test_punctuation_removed(self):
        assert normalize_answer("Houston, Texas!") == "houston texas"

    def test_whitespace_collapsed(self):
        assert normalize_answer("  a   b  ") == "b"  # 'a' is an article

    def test_empty(self):
        assert normalize_answer("") == ""

    def test_number_preserved(self):
        assert normalize_answer("1,066") == "1066"

    def test_token_normalize(self):
        assert normalize_token("Broncos,") == "broncos"


class TestLightStem:
    @pytest.mark.parametrize(
        "word,stem",
        [
            ("performed", "perform"),
            ("competitions", "competition"),
            ("planned", "plan"),
            ("singing", "sing"),
            ("quickly", "quick"),
            ("cat", "cat"),
            ("is", "is"),  # too short to strip
        ],
    )
    def test_stems(self, word, stem):
        assert light_stem(word) == stem

    def test_lowercases(self):
        assert light_stem("Performed") == "perform"
