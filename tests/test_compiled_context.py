"""Compiled-context equivalence and cache behaviour.

The per-paragraph :class:`~repro.qa.compiled.CompiledContext` artifact
must be invisible to callers: predictions (and therefore clip searches
and full distillations) with the compiler on and off are bit-identical
for every span-scoring model, over randomized paragraphs that exercise
capitalized runs, numbers, hyphens, punctuation, and sentence breaks.
"""

from __future__ import annotations

import random

import pytest

from repro import GCED
from repro.core.config import GCEDConfig
from repro.qa.answer_types import AnswerType
from repro.qa.compiled import CompiledContext, ContextCompiler
from repro.qa.base import SpanScoringQA

from tests.conftest import QA_CASES

# Word soup covering every candidate-span extractor: capitalized runs
# (with "of"/"the" bridges), numbers with units, hyphen compounds,
# phrases, pronouns, punctuation, and sentence terminators.
_WORDS = [
    "Denver", "Broncos", "defeated", "the", "champion", "Battle", "of",
    "Hastings", "in", "1066", "Santa", "Clara", "stadium", "game", "won",
    "title", "a", "crowd", "50", "points", "nearly", "3.5", "percent",
    "Knowles-Carter", "performed", "various", "singing", "competitions",
    "she", "they", "history", "famous", "Norman", "conquest",
]
_PUNCT = [",", ".", "!", "?", ";"]

_QUESTIONS = [
    "Who won the battle?",                      # PERSON
    "Where was the game played?",               # PLACE
    "When was the Battle of Hastings?",         # NUMBER
    "Which team earned the title?",             # ENTITY
    "What did she perform in?",                 # ENTITY
    "Describe the famous conquest result",      # PHRASE
]


def _random_paragraph(rng: random.Random) -> str:
    parts: list[str] = []
    for _ in range(rng.randrange(8, 45)):
        parts.append(rng.choice(_WORDS))
        if rng.random() < 0.18:
            parts.append(rng.choice(_PUNCT))
    parts.append(".")
    return " ".join(parts)


def _all_models(artifacts):
    reader = artifacts.reader
    return [reader] + [model for model, _weight in reader.members]


@pytest.fixture()
def fresh_models(artifacts):
    """The four span-scoring models, compilers reset around each test."""
    models = _all_models(artifacts)
    saved = [m.__dict__.get("_context_compiler") for m in models]
    for model in models:
        model.context_compiler = ContextCompiler()
    yield models
    for model, compiler in zip(models, saved):
        if compiler is None and "_context_compiler" in model.__dict__:
            del model.__dict__["_context_compiler"]
        else:
            model.context_compiler = compiler


class TestCompiledEquivalence:
    """Compiled-path predictions are bit-identical to the inline path."""

    def test_randomized_paragraphs_all_models(self, fresh_models):
        rng = random.Random(0)
        paragraphs = [_random_paragraph(rng) for _ in range(12)]
        for model in fresh_models:
            compiled = [
                model.predict(q, p) for q in _QUESTIONS for p in paragraphs
            ]
            model.context_compiler = None
            inline = [
                model.predict(q, p) for q in _QUESTIONS for p in paragraphs
            ]
            assert compiled == inline

    def test_predict_top_k_matches(self, fresh_models):
        rng = random.Random(1)
        paragraphs = [_random_paragraph(rng) for _ in range(6)]
        for model in fresh_models:
            compiled = [
                model.predict_top_k(q, p, k=4)
                for q in _QUESTIONS[:3]
                for p in paragraphs
            ]
            model.context_compiler = None
            inline = [
                model.predict_top_k(q, p, k=4)
                for q in _QUESTIONS[:3]
                for p in paragraphs
            ]
            assert compiled == inline

    def test_conftest_cases_match(self, fresh_models):
        for model in fresh_models:
            compiled = [model.predict(q, c) for q, _a, c in QA_CASES]
            model.context_compiler = None
            inline = [model.predict(q, c) for q, _a, c in QA_CASES]
            assert compiled == inline

    def test_empty_and_degenerate_contexts(self, fresh_models):
        for model in fresh_models:
            for context in ("", "   ", "...", "?"):
                with_compiler = model.predict("Who won?", context)
                model.context_compiler = None
                without = model.predict("Who won?", context)
                model.context_compiler = ContextCompiler()
                assert with_compiler == without


class TestDistillationEquivalence:
    """Full pipeline outputs are identical with the compiler on and off."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_distill_matches(self, artifacts, incremental):
        models = _all_models(artifacts)
        saved = [m.__dict__.get("_context_compiler") for m in models]
        config = GCEDConfig(incremental_scoring=incremental)
        try:
            for model in models:
                model.context_compiler = ContextCompiler()
            on = GCED(
                qa_model=artifacts.reader, artifacts=artifacts, config=config
            )
            with_compiler = [on.distill(*case) for case in QA_CASES]
            for model in models:
                model.context_compiler = None
            off = GCED(
                qa_model=artifacts.reader, artifacts=artifacts, config=config
            )
            without = [off.distill(*case) for case in QA_CASES]
        finally:
            for model, compiler in zip(models, saved):
                model.context_compiler = compiler
        for r_on, r_off in zip(with_compiler, without):
            assert r_on.evidence == r_off.evidence
            assert r_on.scores == r_off.scores
            assert r_on.clip_trace == r_off.clip_trace


class TestCompiledContextTables:
    def test_span_sets_match_inline_derivation(self):
        from repro.qa.answer_types import candidate_spans
        from repro.text.tokenizer import tokenize

        rng = random.Random(2)
        for _ in range(10):
            text = _random_paragraph(rng)
            compiled = CompiledContext(text)
            tokens = tokenize(text)
            for answer_type in AnswerType:
                typed, spans = compiled.span_sets(answer_type)
                want_typed = set(candidate_spans(tokens, answer_type))
                want_spans = set(want_typed)
                if answer_type is AnswerType.ENTITY or not want_spans:
                    want_spans |= set(
                        candidate_spans(tokens, AnswerType.PHRASE)
                    )
                assert typed == want_typed
                assert spans == want_spans

    def test_capitalized_kinds_share_one_extraction(self):
        compiled = CompiledContext("Denver Broncos won the Battle of Hastings.")
        person = compiled.span_sets(AnswerType.PERSON)
        place = compiled.span_sets(AnswerType.PLACE)
        assert person[0] is place[0]  # same frozenset object, not a copy

    def test_sentence_bounds_and_tags_computed_once(self):
        compiled = CompiledContext("Denver won. The crowd cheered.")
        model_tagger = SpanScoringQA._tagger

        class CountingTagger:
            def __init__(self):
                self.calls = 0

            def tag(self, texts):
                self.calls += 1
                return model_tagger.tag(texts)

        tagger = CountingTagger()
        first = compiled.pos_tags(tagger)
        assert compiled.pos_tags(tagger) is first
        assert tagger.calls == 1
        bounds = compiled.sentence_bounds(SpanScoringQA)
        assert compiled.sentence_bounds(SpanScoringQA) is bounds
        assert bounds == SpanScoringQA.sentence_bounds(compiled.tokens)


class TestCompilerCache:
    def test_repeat_contexts_hit(self, artifacts):
        reader = artifacts.reader
        saved = reader.__dict__.get("_context_compiler")
        try:
            reader.context_compiler = ContextCompiler()
            question, _answer, context = QA_CASES[0]
            reader.predict(question, context)
            snap1 = reader.context_compiler.snapshot()
            assert snap1.misses >= 1 and snap1.bytes > 0
            # Same paragraph, different question: compiled tables reused.
            reader.predict("Where was the game played?", context)
            snap2 = reader.context_compiler.snapshot()
            assert snap2.hits > snap1.hits
            assert snap2.misses == snap1.misses
        finally:
            reader.context_compiler = saved

    def test_prep_memoized_per_question(self, artifacts):
        reader = artifacts.reader
        compiled = CompiledContext(QA_CASES[0][2])
        profile = reader._question_profile(QA_CASES[0][0])
        first = compiled.prep(reader, profile)
        assert compiled.prep(reader, profile) is first

    def test_informativeness_predictions_use_scratch_cache(self, artifacts):
        from repro.metrics.informativeness import InformativenessScorer

        reader = artifacts.reader
        saved = reader.__dict__.get("_context_compiler")
        try:
            reader.context_compiler = ContextCompiler()
            scorer = InformativenessScorer(reader)
            # Candidate evidences are short-lived texts: they compile
            # into the scratch cache, never the paragraph-artifact LRU.
            scorer.score_batch(
                "Who won the game?",
                "the champion",
                [
                    "The champion won the game.",
                    "A crowd cheered in the stadium.",
                ],
            )
            scorer.score("Who won the game?", "the champion", "Denver won.")
            compiler = reader.context_compiler
            assert compiler.snapshot().size == 0
            assert compiler.scratch.snapshot().size == 3
            # The same candidate text for another question of the shared
            # paragraph reuses the scratch artifact.
            scorer.score("Who lost the game?", "Denver", "Denver won.")
            assert compiler.scratch.snapshot().hits > 0
            # Transient probes leave the paragraph cache's counters
            # untouched (they peek), so the /stats hit rate reflects
            # real paragraph traffic only.
            assert compiler.snapshot().hits == 0
            assert compiler.snapshot().misses == 0
            # Ordinary predictions still compile into the main cache.
            reader.predict("Who won the game?", "The champion won the game.")
            assert compiler.snapshot().size == 1
        finally:
            reader.context_compiler = saved

    def test_byte_budget_bounds_the_compiler(self):
        compiler = ContextCompiler(capacity=100, max_bytes=40_000)
        rng = random.Random(3)
        for _ in range(50):
            compiler.compile(_random_paragraph(rng))
        snap = compiler.snapshot()
        assert snap.size < 50
        assert snap.bytes <= 40_000
