"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    DATASET_KEYS,
    KnowledgeBase,
    QAExample,
    SquadGenerator,
    TriviaQAGenerator,
    load_dataset,
)
from repro.text.tokenizer import word_tokens


class TestKnowledgeBase:
    @pytest.fixture(scope="class")
    def kb(self):
        return KnowledgeBase(seed=5)

    def test_pools_nonempty(self, kb):
        assert len(kb.people) >= 100
        assert len(kb.teams) >= 20
        assert len(kb.cities) >= 25
        assert len(kb.battles) >= 5

    def test_people_unique_names(self, kb):
        names = [p.name for p in kb.people]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        kb1 = KnowledgeBase(seed=9)
        kb2 = KnowledgeBase(seed=9)
        assert [p.name for p in kb1.people] == [p.name for p in kb2.people]
        assert kb1.people[0].attributes == kb2.people[0].attributes

    def test_different_seeds_differ(self):
        kb1 = KnowledgeBase(seed=1)
        kb2 = KnowledgeBase(seed=2)
        assert [p.name for p in kb1.people] != [p.name for p in kb2.people]

    def test_person_facts_complete(self, kb):
        facts = kb.facts_about(kb.people[0])
        relations = {f.relation for f in facts}
        assert {"born_in", "profession", "created_work", "award"} <= relations

    def test_team_facts(self, kb):
        facts = kb.facts_about_team(kb.teams[0], kb.teams[1])
        championship = next(f for f in facts if f.relation == "won_championship")
        assert championship.answer_of["winner"] == kb.teams[0].name

    def test_band_facts(self, kb):
        assert len(kb.bands) >= 15
        facts = kb.facts_about_band(kb.bands[0])
        relations = {f.relation for f in facts}
        assert relations == {"band_formed", "band_album", "band_singer"}
        singer_fact = next(f for f in facts if f.relation == "band_singer")
        assert any(
            p.name == singer_fact.answer_of["singer"] for p in kb.people
        )

    def test_country_facts(self, kb):
        facts = kb.facts_about_country(kb.countries[0])
        capital = next(f for f in facts if f.relation == "capital_of")
        assert capital.answer_of["capital"]

    def test_death_after_birth(self, kb):
        for person in kb.people[:20]:
            assert person.attributes["death_year"] > person.attributes["birth_year"]


class TestQAExample:
    def test_answer_start_validated(self):
        with pytest.raises(ValueError):
            QAExample("x", "Q?", "some context", ("missing",), answer_start=0)

    def test_answerable_requires_answers(self):
        with pytest.raises(ValueError):
            QAExample("x", "Q?", "ctx", ())

    def test_impossible_allows_empty(self):
        example = QAExample("x", "Q?", "ctx", (), is_impossible=True)
        assert example.primary_answer == ""


class TestSquadGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SquadGenerator("1.1", seed=3).generate(n_train=40, n_dev=20)

    def test_split_sizes(self, dataset):
        assert len(dataset.train) >= 40
        assert len(dataset.dev) >= 20

    def test_answers_located_in_context(self, dataset):
        for example in dataset.train + dataset.dev:
            if example.is_impossible:
                continue
            gold = example.answers[0]
            span = example.context[
                example.answer_start : example.answer_start + len(gold)
            ]
            assert span == gold

    def test_v11_has_no_impossible(self, dataset):
        assert all(not e.is_impossible for e in dataset.train + dataset.dev)

    def test_v20_has_impossible(self):
        ds = SquadGenerator("2.0", seed=3).generate(n_train=60, n_dev=20)
        assert any(e.is_impossible for e in ds.train + ds.dev)

    def test_deterministic(self):
        d1 = SquadGenerator("1.1", seed=4).generate(20, 10)
        d2 = SquadGenerator("1.1", seed=4).generate(20, 10)
        assert [e.question for e in d1.dev] == [e.question for e in d2.dev]

    def test_invalid_version(self):
        with pytest.raises(ValueError):
            SquadGenerator("3.0")

    def test_contexts_multisentence(self, dataset):
        from repro.text.sentences import split_sentences

        lengths = [len(split_sentences(e.context)) for e in dataset.dev[:10]]
        assert min(lengths) >= 3

    def test_example_ids_unique(self, dataset):
        ids = [e.example_id for e in dataset.train + dataset.dev]
        assert len(ids) == len(set(ids))


class TestTriviaQAGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return TriviaQAGenerator("web", seed=3).generate(n_train=20, n_dev=10)

    def test_contexts_longer_than_squad(self, dataset):
        squad = SquadGenerator("1.1", seed=3).generate(20, 10)
        trivia_len = sum(len(word_tokens(e.context)) for e in dataset.dev) / len(
            dataset.dev
        )
        squad_len = sum(len(word_tokens(e.context)) for e in squad.dev) / len(
            squad.dev
        )
        assert trivia_len > 1.5 * squad_len

    def test_answers_located(self, dataset):
        for example in dataset.train + dataset.dev:
            gold = example.answers[0]
            found = example.context[
                example.answer_start : example.answer_start + len(gold)
            ]
            assert found == gold

    def test_web_variant_has_boilerplate(self, dataset):
        corpus = " ".join(e.context for e in dataset.train)
        assert "newsletter" in corpus or "comments" in corpus or "editorial" in corpus

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            TriviaQAGenerator("news")


class TestLoader:
    def test_all_keys_load(self):
        for key in DATASET_KEYS:
            ds = load_dataset(key, seed=2, n_train=6, n_dev=3)
            assert ds.key == key
            assert len(ds.train) >= 6

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            load_dataset("nq")

    def test_contexts_deduplicated(self, squad_dataset):
        contexts = list(squad_dataset.contexts())
        assert len(contexts) == len(set(contexts))

    def test_calibration_triples(self, squad_dataset):
        triples = squad_dataset.calibration_triples(limit=5)
        assert len(triples) == 5
        for question, context, gold in triples:
            assert gold and gold in context
