"""Sharded retrieval subsystem: index, scorers, store, stage, open-context.

The load-bearing invariants, each pinned here:

* shard builds are byte-identical across serial/thread/process executors;
* save → load is an identity (bytes and retrieval results);
* top-k ranking is deterministic, ties broken by ascending doc id;
* the QA layer's TF-IDF and the retrieval layer share one IDF formula;
* the open-context plan reproduces the closed pipeline's evidence once
  retrieval picks the same paragraph.
"""

from __future__ import annotations

import json

import pytest

from repro import GCED
from repro.core import BatchDistiller, OpenContextDistiller, open_context_plan
from repro.core.config import GCEDConfig
from repro.qa.tfidf import TfidfQA
from repro.retrieval import (
    BM25Scorer,
    CorpusRetriever,
    InvertedIndex,
    TfidfScorer,
    index_to_json,
    load_index,
    make_scorer,
    save_index,
    smoothed_idf,
    unseen_idf,
)
from tests.conftest import CORPUS, QA_CASES

DOCS = [
    "the battle of hastings was fought in 1066 by william the conqueror",
    "denver broncos won the super bowl title in santa clara",
    "beyonce was born and raised in houston texas",
    "the norman conquest of england followed the battle of hastings",
    "a second paragraph about the super bowl and the broncos victory",
]


@pytest.fixture(scope="module")
def index() -> InvertedIndex:
    return InvertedIndex.build(DOCS, n_shards=2)


class TestInvertedIndex:
    def test_document_stats(self, index):
        assert index.n_docs == len(DOCS)
        assert index.doc_length(0) == len(DOCS[0].split())
        assert index.avg_doc_len == pytest.approx(
            sum(len(d.split()) for d in DOCS) / len(DOCS)
        )
        assert index.doc_text(2) == DOCS[2]

    def test_postings_merged_across_shards_ascending(self, index):
        postings = index.postings("the")
        assert [doc_id for doc_id, _tf in postings] == sorted(
            doc_id for doc_id, _tf in postings
        )
        # "the" appears twice in doc 0 ("the battle", "the conqueror").
        assert dict(postings)[0] == 2
        assert index.doc_freq("the") == len(postings)
        assert index.doc_freq("zeppelin") == 0

    def test_shard_layout_is_round_robin(self, index):
        for shard in index.shards:
            for doc_id in shard.doc_lengths:
                assert doc_id % len(index.shards) == shard.shard_id

    def test_rejects_empty_corpus_and_bad_shards(self):
        with pytest.raises(ValueError, match="empty corpus"):
            InvertedIndex.build([])
        with pytest.raises(ValueError, match="n_shards"):
            InvertedIndex.build(DOCS, n_shards=0)

    def test_more_shards_than_docs_clamps(self):
        small = InvertedIndex.build(DOCS[:2], n_shards=16)
        assert len(small.shards) == 2


class TestBuildEquivalence:
    def test_serial_thread_process_builds_byte_identical(self):
        serial = CorpusRetriever.build(DOCS, n_shards=3, workers=1)
        threaded = CorpusRetriever.build(
            DOCS, n_shards=3, workers=4, backend="thread"
        )
        processed = CorpusRetriever.build(
            DOCS, n_shards=3, workers=2, backend="process"
        )
        reference = index_to_json(serial.index)
        assert index_to_json(threaded.index) == reference
        assert index_to_json(processed.index) == reference

    def test_parallel_build_retrieves_identically(self):
        serial = CorpusRetriever.build(DOCS, n_shards=3, workers=1)
        threaded = CorpusRetriever.build(
            DOCS, n_shards=3, workers=4, backend="thread"
        )
        for query in ("battle of hastings", "super bowl broncos", "houston"):
            assert [
                (h.doc_id, h.score) for h in serial.retrieve(query, k=4)
            ] == [(h.doc_id, h.score) for h in threaded.retrieve(query, k=4)]


class TestStore:
    def test_save_load_round_trip_identity(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        assert index_to_json(reloaded) == index_to_json(index)
        # Saving the reload reproduces the file byte-for-byte.
        save_index(reloaded, tmp_path / "again.json")
        assert (tmp_path / "again.json").read_bytes() == path.read_bytes()

    def test_reloaded_index_retrieves_identically(self, index, tmp_path):
        path = tmp_path / "index.json"
        warm = CorpusRetriever(index)
        warm.save(path)
        cold = CorpusRetriever.load(path)
        for query in ("battle of hastings", "super bowl title"):
            assert [
                (h.doc_id, h.score, h.text) for h in warm.retrieve(query, k=5)
            ] == [(h.doc_id, h.score, h.text) for h in cold.retrieve(query, k=5)]

    def test_load_rejects_foreign_and_future_files(self, index, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a gced-index"):
            load_index(bogus)
        future = tmp_path / "future.json"
        envelope = json.loads(index_to_json(index))
        envelope["version"] = 999
        future.write_text(json.dumps(envelope))
        with pytest.raises(ValueError, match="version"):
            load_index(future)


class TestRanking:
    def test_bm25_ranks_relevant_doc_first(self, index):
        retriever = CorpusRetriever(index)
        hits = retriever.retrieve("who fought the battle of hastings in 1066", k=3)
        assert hits[0].doc_id == 0
        assert hits[0].rank == 0
        assert hits[0].score >= hits[-1].score

    def test_tfidf_scorer_also_ranks_relevant_doc_first(self, index):
        retriever = CorpusRetriever(index, scorer=TfidfScorer())
        hits = retriever.retrieve("born in houston texas", k=2)
        assert hits[0].doc_id == 2

    def test_deterministic_tie_breaking_prefers_lower_doc_id(self):
        duplicated = ["alpha beta gamma", "delta epsilon", "alpha beta gamma"]
        retriever = CorpusRetriever.build(duplicated, n_shards=2)
        hits = retriever.retrieve("alpha beta", k=3)
        # Docs 0 and 2 are identical, so their scores tie exactly; the
        # lower doc id must come first, every time.
        assert [h.doc_id for h in hits[:2]] == [0, 2]
        assert hits[0].score == pytest.approx(hits[1].score)
        for _ in range(5):
            again = retriever.retrieve("alpha beta", k=3)
            assert [h.doc_id for h in again] == [h.doc_id for h in hits]

    def test_no_overlap_means_no_hits(self, index):
        retriever = CorpusRetriever(index)
        assert retriever.retrieve("zzz qqq xyzzy", k=3) == []

    def test_k_must_be_positive(self, index):
        with pytest.raises(ValueError, match="k must be"):
            CorpusRetriever(index).retrieve("battle", k=0)

    def test_make_scorer_registry(self):
        assert isinstance(make_scorer("bm25", k1=1.2), BM25Scorer)
        assert isinstance(make_scorer("tfidf"), TfidfScorer)
        with pytest.raises(KeyError, match="unknown scorer"):
            make_scorer("neural")


class TestSharedWeighting:
    def test_qa_tfidf_uses_the_shared_idf_formula(self):
        model = TfidfQA().fit(CORPUS)
        n_docs = len(CORPUS)
        # "beyonce" appears in exactly one document of the fixture corpus.
        assert model.idf("beyonce") == pytest.approx(smoothed_idf(n_docs, 1))
        assert model.idf("the") == pytest.approx(smoothed_idf(n_docs, n_docs))
        assert model.idf("xyzzy") == pytest.approx(unseen_idf(n_docs))


@pytest.fixture(scope="module")
def corpus_retriever() -> CorpusRetriever:
    return CorpusRetriever.build(CORPUS, n_shards=2)


class TestRetrieveStage:
    def test_open_context_plan_matches_closed_pipeline(
        self, artifacts, corpus_retriever
    ):
        open_gced = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            plan=open_context_plan(GCEDConfig()),
            retriever=corpus_retriever,
        )
        closed_gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        for question, answer, context in QA_CASES[:3]:
            top = corpus_retriever.retrieve_for_qa(question, answer, k=1)[0]
            assert top.text == context  # retrieval found the gold paragraph
            open_result = open_gced.distill(question, answer)
            closed_result = closed_gced.distill(question, answer, context)
            assert open_result.evidence == closed_result.evidence
            assert open_result.scores == closed_result.scores
            # The retrieval decision is part of the result trace.
            assert open_result.retrieval["doc_id"] == top.doc_id
            assert closed_result.retrieval is None
            assert "retrieved context" in open_result.explain()

    def test_given_context_passes_through_untouched(
        self, artifacts, corpus_retriever
    ):
        gced = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            plan=open_context_plan(GCEDConfig()),
            retriever=corpus_retriever,
        )
        question, answer, context = QA_CASES[0]
        ctx = gced.make_context(question, answer, context)
        result = gced.run_stages(ctx)
        assert ctx.extras["retrieval"] == {"skipped": True}
        assert result.evidence

    def test_empty_context_without_retriever_still_rejected(self, artifacts):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with pytest.raises(ValueError, match="context must be non-empty"):
            gced.distill("q", "a", "")

    def test_open_plan_without_retriever_raises_cleanly(self, artifacts):
        gced = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            plan=open_context_plan(GCEDConfig()),
        )
        with pytest.raises(RuntimeError, match="no retriever"):
            gced.distill("q", "a")

    def test_unmatched_query_halts_with_empty_result(
        self, artifacts, corpus_retriever
    ):
        gced = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            plan=open_context_plan(GCEDConfig()),
            retriever=corpus_retriever,
        )
        result = gced.distill("xyzzy quux?", "frobnicate")
        assert result.evidence == ""
        assert result.forest_size == 0


class TestOpenContextDistiller:
    def test_ask_ranks_by_hybrid_evidence_score(
        self, artifacts, corpus_retriever
    ):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with OpenContextDistiller(
            BatchDistiller(gced), corpus_retriever, top_k=3
        ) as distiller:
            question, answer, context = QA_CASES[0]
            outcome = distiller.ask(question, answer)
        assert outcome.best is not None
        assert outcome.best.paragraph.text == context
        hybrids = [
            candidate.result.scores.hybrid
            for candidate in outcome.candidates
            if candidate.ok and candidate.result.scores.is_valid
        ]
        assert hybrids == sorted(hybrids, reverse=True)
        payload = outcome.to_dict()
        assert payload["best_evidence"] == outcome.best.result.evidence
        assert payload["errors"] == 0
        assert len(payload["candidates"]) == len(outcome.candidates)

    def test_ask_batch_matches_individual_asks(
        self, artifacts, corpus_retriever
    ):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        pairs = [(q, a) for q, a, _c in QA_CASES[:3]]
        with OpenContextDistiller(
            BatchDistiller(gced), corpus_retriever, top_k=2
        ) as distiller:
            batched = distiller.ask_batch(pairs)
            singles = [distiller.ask(q, a) for q, a in pairs]
        for one, many in zip(singles, batched):
            assert json.dumps(one.to_dict(), sort_keys=True) == json.dumps(
                many.to_dict(), sort_keys=True
            )

    def test_k_zero_is_rejected_not_coerced(self, artifacts, corpus_retriever):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with OpenContextDistiller(
            BatchDistiller(gced), corpus_retriever
        ) as distiller:
            with pytest.raises(ValueError, match="k must be"):
                distiller.ask("q", "a", k=0)

    def test_unmatched_ask_has_no_candidates(self, artifacts, corpus_retriever):
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with OpenContextDistiller(
            BatchDistiller(gced), corpus_retriever
        ) as distiller:
            outcome = distiller.ask("xyzzy?", "quux")
        assert outcome.candidates == ()
        assert outcome.best is None
        assert outcome.to_dict()["best_evidence"] == ""
