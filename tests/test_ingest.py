"""Durable live-corpus ingestion: WAL, mutable index, compaction, fleet.

The load-bearing contracts, each pinned here:

* WAL replay is an identity over synced appends, and a torn tail (the
  crash landed mid-frame) truncates cleanly back to the last good record;
* the mutable delta-over-base index scores *byte-identically* to a clean
  from-scratch replay of the same operation log — live ingest never
  perturbs BM25 floats;
* segment persistence round-trips both envelope versions, and v1 files
  load byte-compatibly;
* SIGKILL at every ingestion fault site (``wal.append``,
  ``ingest.apply``, each ``compaction.run`` phase) leaves the directory
  recoverable: no acknowledged write is lost, tombstoned documents are
  never returned, and post-recovery results equal an independent offline
  rebuild (chaos-marked);
* the supervised shard fleet ranks exactly like inline search, restarts
  dead workers, and degrades to the surviving shards;
* a post-compaction snapshot refresh re-hydrates the existing process
  pool (same worker pids, bumped generation) without a respawn.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import textwrap

import pytest

from repro.faults import ENV_VAR, FaultPlan, FaultSpec, injected
from repro.retrieval import (
    BM25Scorer,
    CorpusRetriever,
    IngestManager,
    InvertedIndex,
    MutableInvertedIndex,
    Segment,
    ShardFleet,
    WalRecord,
    WriteAheadLog,
    load_index,
    load_segment,
    replay_directory,
    save_index,
    save_segment,
)

wal_replay = WriteAheadLog.replay

SEED = [
    "the battle of hastings was fought in 1066",
    "denver broncos won the super bowl title",
    "beyonce was born and raised in houston texas",
    "the norman conquest followed the battle of hastings",
]

QUERIES = [
    "battle of hastings",
    "super bowl title",
    "houston texas",
    "payload record",
    "token2",
    "token7",
]


def _assert_equivalent(index, reference) -> None:
    """Recovered and reference indexes must agree to the byte."""
    assert index.docs == reference.docs
    assert index.tombstones == reference.tombstones
    assert index.n_docs == reference.n_docs
    assert index.avg_doc_len == reference.avg_doc_len
    scorer = BM25Scorer()
    for query in QUERIES:
        assert scorer.score_all(index, query) == scorer.score_all(
            reference, query
        )
        assert scorer.top_k(index, query, 5) == scorer.top_k(
            reference, query, 5
        )


def _offline_rebuild(directory: pathlib.Path) -> MutableInvertedIndex:
    """Independent rebuild: segment base + WAL replay, no manager code."""
    segment = load_segment(directory / "segment.json")
    reference = MutableInvertedIndex(segment.index, segment.tombstones)
    records, _torn = replay_directory(directory / "wal")
    for record in records:
        if record.seq <= segment.applied_seq:
            continue
        if record.op == "add":
            reference.apply_add(record.doc_id, record.text)
        else:
            try:
                reference.apply_delete(record.doc_id)
            except KeyError:
                pass
    return reference


# ------------------------------------------------------------------- WAL
class TestWriteAheadLog:
    def test_append_sync_replay_roundtrip(self, tmp_path):
        path = tmp_path / "shard-0000.log"
        records = [
            WalRecord(seq=1, op="add", doc_id=4, text="alpha beta"),
            WalRecord(seq=2, op="delete", doc_id=4),
            WalRecord(seq=3, op="add", doc_id=5, text="gamma"),
        ]
        with WriteAheadLog(path) as wal:
            for record in records:
                wal.append(record)
            wal.sync()
        replayed, torn = wal_replay(path)
        assert replayed == records
        assert torn == 0

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        path = tmp_path / "shard-0000.log"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(seq=1, op="add", doc_id=0, text="alpha"))
            wal.sync()
        good_size = path.stat().st_size
        # A crash mid-write leaves a partial frame: header promising more
        # payload than exists, plus garbage.
        with path.open("ab") as handle:
            handle.write(b"\x00\x00\xff\xff\x12\x34\x56\x78partial")
        replayed, torn = wal_replay(path)
        assert [record.seq for record in replayed] == [1]
        assert torn > 0
        assert path.stat().st_size == good_size
        # The truncated log accepts new appends and replays the union.
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(seq=2, op="add", doc_id=1, text="beta"))
            wal.sync()
        replayed, torn = wal_replay(path)
        assert [record.seq for record in replayed] == [1, 2]
        assert torn == 0

    def test_corrupt_crc_stops_replay_at_tear(self, tmp_path):
        path = tmp_path / "shard-0000.log"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(seq=1, op="add", doc_id=0, text="alpha"))
            offset = wal.append(
                WalRecord(seq=2, op="add", doc_id=1, text="beta")
            )
            wal.sync()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        replayed, torn = wal_replay(path)
        assert [record.seq for record in replayed] == [1]
        assert torn > 0
        assert path.stat().st_size == offset

    def test_replay_directory_merges_by_seq(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        with WriteAheadLog(wal_dir / "shard-0001.log") as wal:
            wal.append(WalRecord(seq=2, op="add", doc_id=1, text="b"))
            wal.sync()
        with WriteAheadLog(wal_dir / "shard-0000.log") as wal:
            wal.append(WalRecord(seq=1, op="add", doc_id=0, text="a"))
            wal.append(WalRecord(seq=3, op="add", doc_id=2, text="c"))
            wal.sync()
        records, torn = replay_directory(wal_dir)
        assert [record.seq for record in records] == [1, 2, 3]
        assert torn == 0


# --------------------------------------------------------- mutable index
class TestMutableInvertedIndex:
    def test_matches_clean_replay_byte_identical(self):
        base = InvertedIndex.build(SEED, n_shards=2)
        live = MutableInvertedIndex(base)
        live.add("payload record zero token0")
        live.add("payload record one token1")
        live.apply_delete(1)
        live.add("payload record two token2")
        live.apply_delete(4)

        reference = MutableInvertedIndex(InvertedIndex.build(SEED, n_shards=2))
        reference.apply_add(4, "payload record zero token0")
        reference.apply_add(5, "payload record one token1")
        reference.apply_delete(1)
        reference.apply_add(6, "payload record two token2")
        reference.apply_delete(4)
        _assert_equivalent(live, reference)

    def test_tombstoned_doc_invisible_and_blank(self):
        live = MutableInvertedIndex(InvertedIndex.build(SEED, n_shards=2))
        live.apply_delete(0)
        assert live.doc_text(0) == ""
        assert 0 in live.tombstones
        scorer = BM25Scorer()
        hits = scorer.top_k(live, "battle of hastings", 4)
        assert 0 not in {doc_id for doc_id, _score in hits}
        assert live.n_docs == len(SEED) - 1

    def test_doc_ids_append_only(self):
        live = MutableInvertedIndex(InvertedIndex.build(SEED, n_shards=2))
        doc_id = live.add("payload")
        assert doc_id == len(SEED)
        with pytest.raises(ValueError):
            live.apply_add(doc_id, "reused id")
        live.apply_delete(doc_id)
        with pytest.raises(KeyError):
            live.apply_delete(doc_id)
        # Ids are never reused, even after a delete.
        assert live.add("another") == doc_id + 1

    def test_compacted_equals_folded_state(self):
        live = MutableInvertedIndex(InvertedIndex.build(SEED, n_shards=2))
        live.add("payload record zero token0")
        live.apply_delete(1)
        folded = live.compacted()
        rewrapped = MutableInvertedIndex(folded, live.tombstones)
        _assert_equivalent(live, rewrapped)


# ------------------------------------------------------------ store v1/v2
class TestSegmentStore:
    def test_segment_roundtrip_preserves_everything(self, tmp_path):
        base = InvertedIndex.build(SEED, n_shards=2)
        live = MutableInvertedIndex(base)
        live.add("payload record zero token0")
        live.apply_delete(1)
        segment = Segment(
            index=live.compacted(),
            tombstones=tuple(sorted(live.tombstones)),
            applied_seq=7,
            generation=3,
        )
        path = save_segment(segment, tmp_path / "segment.json")
        loaded = load_segment(path)
        assert loaded.applied_seq == 7
        assert loaded.generation == 3
        assert loaded.tombstones == segment.tombstones
        assert loaded.index.to_dict() == segment.index.to_dict()

    def test_v1_file_loads_as_defaulted_segment(self, tmp_path):
        index = InvertedIndex.build(SEED, n_shards=2)
        path = save_index(index, tmp_path / "index.json")
        raw = json.loads(path.read_text())
        assert raw["version"] == 1
        segment = load_segment(path)
        assert segment.tombstones == ()
        assert segment.applied_seq == 0
        assert segment.generation == 0
        assert segment.index.to_dict() == index.to_dict()
        # And the v1 loader still reads v2 envelopes (index only).
        v2_path = save_segment(Segment(index=index), tmp_path / "seg.json")
        assert load_index(v2_path).to_dict() == index.to_dict()

    def test_v2_bytes_stable_across_save_load_save(self, tmp_path):
        index = InvertedIndex.build(SEED, n_shards=2)
        segment = Segment(index=index, tombstones=(1,), applied_seq=5)
        first = save_segment(segment, tmp_path / "a.json").read_bytes()
        second = save_segment(
            load_segment(tmp_path / "a.json"), tmp_path / "b.json"
        ).read_bytes()
        assert first == second


# --------------------------------------------------------- ingest manager
class TestIngestManager:
    def test_reopen_replays_to_identical_state(self, tmp_path):
        with IngestManager.open(tmp_path, base_corpus=SEED) as manager:
            ids = manager.add_documents(
                ["payload record zero token0", "payload record one token1"]
            )
            manager.delete_document(ids[0])
            live_docs = manager.index.docs
            live_scores = BM25Scorer().score_all(manager.index, "payload")
        with IngestManager.open(tmp_path) as reopened:
            assert reopened.index.docs == live_docs
            assert (
                BM25Scorer().score_all(reopened.index, "payload")
                == live_scores
            )
            assert reopened.stats()["replayed_records"] == 3
            _assert_equivalent(reopened.index, _offline_rebuild(tmp_path))

    def test_compaction_folds_wal_and_survives_reopen(self, tmp_path):
        with IngestManager.open(tmp_path, base_corpus=SEED) as manager:
            ids = manager.add_documents(["payload record zero token0"])
            manager.delete_document(ids[0])
            assert manager.wal_bytes() > 0
            report = manager.compact()
            assert report["generation"] == 1
            assert manager.wal_bytes() == 0
            docs = manager.index.docs
        with IngestManager.open(tmp_path) as reopened:
            assert reopened.generation == 1
            assert reopened.stats()["replayed_records"] == 0
            assert reopened.index.docs == docs

    def test_compact_every_triggers_automatically(self, tmp_path):
        with IngestManager.open(
            tmp_path, base_corpus=SEED, compact_every=2
        ) as manager:
            manager.add_documents(["payload record zero token0"])
            assert manager.generation == 0
            manager.add_documents(["payload record one token1"])
            assert manager.generation == 1
            assert manager.wal_bytes() == 0

    def test_on_compact_hook_fires_with_generation(self, tmp_path):
        generations: list[int] = []
        with IngestManager.open(
            tmp_path, base_corpus=SEED, on_compact=generations.append
        ) as manager:
            manager.add_documents(["payload record zero token0"])
            manager.compact()
            manager.compact()
        assert generations == [1, 2]

    def test_acked_writes_are_on_disk_before_return(self, tmp_path):
        with IngestManager.open(tmp_path, base_corpus=SEED) as manager:
            manager.add_documents(["payload record zero token0"])
            # Read the WAL directly, bypassing the manager: the record
            # must already be durable (fsynced) by the time add returned.
            records, torn = replay_directory(tmp_path / "wal")
        assert torn == 0
        assert [record.op for record in records] == ["add"]
        assert records[0].text == "payload record zero token0"

    def test_validates_inputs(self, tmp_path):
        with IngestManager.open(tmp_path, base_corpus=SEED) as manager:
            assert manager.add_documents([]) == []
            with pytest.raises(ValueError):
                manager.add_documents(["ok", "   "])
            with pytest.raises(KeyError):
                manager.delete_document(999)

    def test_replay_skips_records_behind_segment(self, tmp_path):
        """Crash between segment rename and WAL reset must be idempotent."""
        with IngestManager.open(tmp_path, base_corpus=SEED) as manager:
            manager.add_documents(["payload record zero token0"])
            docs = manager.index.docs
            segment = Segment(
                index=manager.index.compacted(),
                tombstones=tuple(sorted(manager.index.tombstones)),
                applied_seq=manager.applied_seq + 1,
                generation=manager.generation + 1,
            )
        # Simulate the torn compaction: new segment on disk, stale WAL.
        save_segment(segment, tmp_path / "segment.json")
        with IngestManager.open(tmp_path) as reopened:
            assert reopened.index.docs == docs
            assert reopened.stats()["replay_skipped"] == 1
            assert reopened.stats()["replayed_records"] == 0


# ------------------------------------------------------------ shard fleet
class TestShardFleet:
    def test_fleet_matches_inline_ranking(self):
        index = InvertedIndex.build(SEED, n_shards=2)
        live = MutableInvertedIndex(index)
        live.add("payload record zero token0")
        live.apply_delete(1)
        scorer = BM25Scorer()
        with ShardFleet(live, scorer=scorer) as fleet:
            for query in QUERIES:
                assert fleet.search(query, 4) == scorer.top_k(live, query, 4)

    def test_failed_shard_retries_then_succeeds(self):
        index = InvertedIndex.build(SEED, n_shards=2)
        with injected(FaultPlan.parse("shard.search:raise:times=1")):
            with ShardFleet(index, scorer=BM25Scorer()) as fleet:
                hits = fleet.search("battle of hastings", 4)
                assert hits == BM25Scorer().top_k(
                    index, "battle of hastings", 4
                )
                assert fleet.stats()["retries"] == 1
                assert not fleet.degraded

    def test_persistent_shard_failure_degrades_to_survivors(self):
        index = InvertedIndex.build(SEED, n_shards=2)
        plan = FaultPlan(
            (FaultSpec(site="shard.search", action="raise", match="0:"),)
        )
        with injected(plan):
            with ShardFleet(
                index, scorer=BM25Scorer(), breaker_failures=1
            ) as fleet:
                hits = fleet.search("battle of hastings", 4)
                # Shard 0's docs (even ids) are gone; survivors still rank.
                assert hits
                assert all(doc_id % 2 == 1 for doc_id, _score in hits)
                assert fleet.degraded
                assert fleet.stats()["degraded_searches"] >= 1
                # The open breaker now skips shard 0 without waiting.
                again = fleet.search("battle of hastings", 4)
                assert again == hits

    def test_supervisor_restarts_dead_worker(self):
        from repro.retrieval.fleet import _STOP

        index = InvertedIndex.build(SEED, n_shards=2)
        with ShardFleet(index, scorer=BM25Scorer()) as fleet:
            worker = fleet.workers[0]
            worker._queue.put(_STOP)  # simulate the thread dying
            worker._thread.join(timeout=2.0)
            assert worker.health() == "down"
            fleet.supervise()
            assert worker.health() == "healthy"
            assert worker.restarts == 1
            hits = fleet.search("battle of hastings", 4)
            assert hits == BM25Scorer().top_k(index, "battle of hastings", 4)

    def test_retriever_routes_through_fleet(self):
        retriever = CorpusRetriever.build(SEED, n_shards=2)
        inline = retriever.retrieve("battle of hastings", k=3)
        with ShardFleet(retriever.index, scorer=retriever.scorer) as fleet:
            retriever.attach_fleet(fleet)
            fleeted = retriever.retrieve("battle of hastings", k=3)
        assert [(hit.doc_id, hit.score) for hit in fleeted] == [
            (hit.doc_id, hit.score) for hit in inline
        ]


# ------------------------------------------------- SIGKILL crash recovery
_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.faults import install_from_env
    from repro.retrieval import IngestManager

    install_from_env()
    SEED = {seed!r}
    directory, mode = sys.argv[1], sys.argv[2]
    manager = IngestManager.open(directory, base_corpus=SEED)
    if mode == "ingest":
        for i in range(12):
            text = f"payload record {{i}} token{{i}}"
            ids = manager.add_documents([text])
            print(f"ACK add {{ids[0]}} {{text}}", flush=True)
    else:
        for i in range(4):
            text = f"payload record {{i}} token{{i}}"
            ids = manager.add_documents([text])
            print(f"ACK add {{ids[0]}} {{text}}", flush=True)
        manager.delete_document(len(SEED))
        print(f"ACK del {{len(SEED)}}", flush=True)
        manager.compact()
        print("ACK compact", flush=True)
    print("DONE", flush=True)
    """
).format(seed=SEED)


def _run_killed_child(tmp_path, mode: str, plan: str):
    """Run the ingest child under a die plan; return its ACK lines."""
    with tempfile.NamedTemporaryFile(delete=False) as handle:
        token = handle.name
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(tmp_path), mode],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": "src", ENV_VAR: f"{plan},token={token}"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    lines = result.stdout.splitlines()
    assert "DONE" not in lines, (
        f"fault plan {plan!r} never fired: {result.stdout!r} "
        f"{result.stderr!r}"
    )
    assert result.returncode != 0
    acked_adds = {}
    acked_deletes = set()
    for line in lines:
        parts = line.split(" ", 3)
        if parts[:2] == ["ACK", "add"]:
            acked_adds[int(parts[2])] = parts[3]
        elif parts[:2] == ["ACK", "del"]:
            acked_deletes.add(int(parts[2]))
    return acked_adds, acked_deletes


def _verify_recovery(tmp_path, acked_adds, acked_deletes) -> None:
    with IngestManager.open(tmp_path) as manager:
        index = manager.index
        for doc_id, text in acked_adds.items():
            if doc_id in acked_deletes:
                continue
            assert index.doc_text(doc_id) == text, (
                f"acknowledged write {doc_id} lost"
            )
        scorer = BM25Scorer()
        for doc_id in acked_deletes:
            assert index.doc_text(doc_id) == ""
            assert doc_id in index.tombstones
        for query in QUERIES:
            hits = scorer.top_k(index, query, 50)
            assert not any(
                doc_id in index.tombstones for doc_id, _score in hits
            ), "tombstoned document returned from search"
        _assert_equivalent(index, _offline_rebuild(tmp_path))
        # Recovery is idempotent: a second rebuild from the same disk
        # state (post-truncation) lands on the same index.
        _assert_equivalent(index, _offline_rebuild(tmp_path))


@pytest.mark.chaos
class TestSigkillRecovery:
    @pytest.mark.parametrize(
        "plan",
        [
            "wal.append:die:times=1,skip=5",
            "ingest.apply:die:times=1,skip=3",
        ],
    )
    def test_kill_during_ingest(self, tmp_path, plan):
        acked_adds, acked_deletes = _run_killed_child(tmp_path, "ingest", plan)
        assert acked_adds, "child died before acknowledging any write"
        _verify_recovery(tmp_path, acked_adds, acked_deletes)

    @pytest.mark.parametrize("phase", ["begin", "swap", "reset"])
    def test_kill_during_compaction(self, tmp_path, phase):
        plan = f"compaction.run:die:times=1,match={phase}"
        acked_adds, acked_deletes = _run_killed_child(
            tmp_path, "compact", plan
        )
        assert len(acked_adds) == 4
        assert acked_deletes == {len(SEED)}
        _verify_recovery(tmp_path, acked_adds, acked_deletes)

    def test_torn_tail_after_kill_is_recoverable(self, tmp_path):
        """A kill plus a physically torn frame still recovers cleanly."""
        plan = "ingest.apply:die:times=1,skip=6"
        acked_adds, acked_deletes = _run_killed_child(tmp_path, "ingest", plan)
        # Physically tear the tail of one WAL shard on top of the crash.
        wal_files = sorted((tmp_path / "wal").glob("shard-*.log"))
        assert wal_files
        with wal_files[0].open("ab") as handle:
            handle.write(b"\x00\x00\x01\x00garbage-without-full-frame")
        with IngestManager.open(tmp_path) as manager:
            assert manager.stats()["torn_bytes"] > 0
        _verify_recovery(tmp_path, acked_adds, acked_deletes)


# --------------------------------------------------- service + HTTP plane
@pytest.fixture(scope="module")
def ingest_served(artifacts, tmp_path_factory):
    from repro import GCED
    from repro.service import DistillService, ServiceClient, start_server

    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    directory = tmp_path_factory.mktemp("ingest-served")
    service = DistillService(
        gced,
        max_batch_size=4,
        max_wait_ms=10,
        retriever=CorpusRetriever.build(SEED, n_shards=2),
        ingest_dir=str(directory),
        fleet=True,
    )
    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


class TestIngestHTTP:
    def test_ingest_and_delete_round_trip(self, ingest_served):
        service, client = ingest_served
        before = service.ingest.stats()["live_docs"]
        added = client.ingest(
            ["payload record alpha tokenalpha", "payload record beta tokenbeta"]
        )
        assert len(added["doc_ids"]) == 2
        assert added["live_docs"] == before + 2
        deleted = client.delete_doc(added["doc_ids"][0])
        assert deleted["deleted"] == added["doc_ids"][0]
        assert deleted["live_docs"] == before + 1
        # The fleet serves the freshly ingested doc (doc never tombstoned).
        hits = service.retriever.retrieve("payload record tokenbeta", k=2)
        assert added["doc_ids"][1] in [hit.doc_id for hit in hits]

    def test_delete_unknown_doc_is_404(self, ingest_served):
        from repro.service import ServiceError

        _service, client = ingest_served
        with pytest.raises(ServiceError) as excinfo:
            client.delete_doc(999_999)
        assert excinfo.value.status == 404

    def test_ingest_rejects_bad_payloads_400(self, ingest_served):
        from repro.service import ServiceError

        _service, client = ingest_served
        for bad in ([], ["ok", 7], "not-a-list"):
            with pytest.raises(ServiceError) as excinfo:
                client.ingest(bad)
            assert excinfo.value.status == 400

    def test_stats_report_ingest_and_fleet_blocks(self, ingest_served):
        service, client = ingest_served
        stats = client.stats()
        assert stats["ingest"]["live_docs"] == (
            service.ingest.stats()["live_docs"]
        )
        assert stats["ingest"]["wal_bytes"] > 0
        assert stats["fleet"]["n_shards"] == 2
        states = {worker["state"] for worker in stats["fleet"]["workers"]}
        assert states <= {"healthy", "suspect"}

    def test_metrics_expose_ingest_fleet_and_route_latency(
        self, ingest_served
    ):
        _service, client = ingest_served
        client.healthz()  # guarantee at least one observed GET route
        text = client.metrics_text()
        assert 'gced_ingest_docs_total{op="add"}' in text
        assert "gced_ingest_live_docs" in text
        assert "gced_ingest_wal_bytes" in text
        assert 'gced_shard_state{shard="0"}' in text
        assert 'gced_http_request_seconds_bucket{route="/healthz",le="' in text

    def test_ingest_without_plane_is_503(self, artifacts, tmp_path):
        from repro import GCED
        from repro.service import (
            DistillService,
            ServiceClient,
            ServiceError,
            start_server,
        )

        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        service = DistillService(
            gced, retriever=CorpusRetriever.build(SEED, n_shards=2)
        )
        server, _thread = start_server(service, quiet=True)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            with pytest.raises(ServiceError) as excinfo:
                client.ingest(["some document"])
            assert excinfo.value.status == 503
            with pytest.raises(ServiceError) as excinfo:
                client.delete_doc(0)
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_compact_every_bumps_generation_and_refreshes(
        self, artifacts, tmp_path
    ):
        from repro import GCED
        from repro.service import DistillService

        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        with DistillService(
            gced,
            retriever=CorpusRetriever.build(SEED, n_shards=2),
            ingest_dir=str(tmp_path),
            compact_every=2,
        ) as service:
            service.ingest_dicts(["payload record zero token0"])
            assert service.stats()["ingest"]["generation"] == 0
            service.ingest_dicts(["payload record one token1"])
            stats = service.stats()
            assert stats["ingest"]["generation"] == 1
            assert stats["ingest"]["wal_bytes"] == 0
            # The retriever kept its (rebased-in-place) mutable index.
            hits = service.retriever.retrieve("payload token1", k=2)
            assert hits

    def test_reopened_service_replays_acked_writes(self, artifacts, tmp_path):
        from repro import GCED
        from repro.service import DistillService

        def make_service():
            gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
            return DistillService(
                gced,
                retriever=CorpusRetriever.build(SEED, n_shards=2),
                ingest_dir=str(tmp_path),
            )

        with make_service() as service:
            added = service.ingest_dicts(["payload record zero token0"])
            doc_id = added["doc_ids"][0]
        with make_service() as reopened:
            assert reopened.ingest.index.doc_text(doc_id) == (
                "payload record zero token0"
            )
