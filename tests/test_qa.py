"""Unit tests for the QA substrate: typing, scorers, ensemble, registry."""

import pytest

from repro.qa import (
    AnswerType,
    EnsembleQA,
    LexicalOverlapQA,
    TfidfQA,
    classify_question,
    candidate_spans,
)
from repro.qa.base import AnswerPrediction
from repro.qa.registry import (
    SQUAD_BASELINES,
    TRIVIAQA_BASELINES,
    SimulatedBaseline,
    build_baseline,
)
from repro.text.tokenizer import tokenize
from tests.conftest import CORPUS, QA_CASES


class TestClassifyQuestion:
    @pytest.mark.parametrize(
        "question,expected",
        [
            ("Who led the conquest?", AnswerType.PERSON),
            ("Where was she born?", AnswerType.PLACE),
            ("When was the battle?", AnswerType.NUMBER),
            ("How many people attended?", AnswerType.NUMBER),
            ("Which team won the title?", AnswerType.ENTITY),
            ("Name the thing.", AnswerType.PHRASE),
        ],
    )
    def test_types(self, question, expected):
        assert classify_question(question) == expected


class TestCandidateSpans:
    def test_number_spans(self):
        tokens = tokenize("The battle was fought in 1066 with 7,000 men.")
        spans = candidate_spans(tokens, AnswerType.NUMBER)
        surfaces = {" ".join(t.text for t in tokens[s : e + 1]) for s, e in spans}
        assert "1066" in surfaces
        assert "7,000" in surfaces

    def test_entity_runs(self):
        tokens = tokenize("champion Denver Broncos defeated Carolina Panthers")
        spans = candidate_spans(tokens, AnswerType.PERSON)
        surfaces = {" ".join(t.text for t in tokens[s : e + 1]) for s, e in spans}
        assert "Denver Broncos" in surfaces
        assert "Carolina Panthers" in surfaces

    def test_of_bridge(self):
        tokens = tokenize("He won the Battle of Hastings easily.")
        spans = candidate_spans(tokens, AnswerType.ENTITY)
        surfaces = {" ".join(t.text for t in tokens[s : e + 1]) for s, e in spans}
        assert "Battle of Hastings" in surfaces

    def test_pronoun_excluded(self):
        tokens = tokenize("She performed in competitions.")
        spans = candidate_spans(tokens, AnswerType.PERSON)
        surfaces = {" ".join(t.text for t in tokens[s : e + 1]) for s, e in spans}
        assert "She" not in surfaces

    def test_phrase_anchored_on_content(self):
        tokens = tokenize("the battle of the river")
        spans = candidate_spans(tokens, AnswerType.PHRASE)
        for s, e in spans:
            assert tokens[s].lower not in ("the", "of")
            assert tokens[e].lower not in ("the", "of")

    def test_empty_tokens(self):
        assert candidate_spans([], AnswerType.PHRASE) == []


class TestReaders:
    def test_lexical_predicts_case(self, artifacts):
        qa = LexicalOverlapQA()
        pred = qa.predict(
            "Who led the Norman conquest of England?", CORPUS[2]
        )
        assert "William" in pred.text

    def test_ensemble_predicts_all_cases(self, artifacts):
        correct = 0
        for question, answer, context in QA_CASES:
            pred = artifacts.reader.predict(question, context)
            from repro.metrics import f1_score

            if f1_score(pred.text, answer) > 0.6:
                correct += 1
        assert correct >= len(QA_CASES) - 1

    def test_empty_context(self, artifacts):
        pred = artifacts.reader.predict("Who?", "")
        assert pred.is_empty

    def test_top_k_non_overlapping(self, artifacts):
        preds = artifacts.reader.predict_top_k(
            "Which NFL team won the Super Bowl title?", CORPUS[0], k=3
        )
        assert len(preds) >= 2
        for i, a in enumerate(preds):
            for b in preds[i + 1 :]:
                assert a.end <= b.start or b.end <= a.start

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            LexicalOverlapQA(decay=1.5)

    def test_tfidf_unfitted_default(self):
        qa = TfidfQA()
        assert qa.idf("anything") == 1.0

    def test_tfidf_fit_rare_beats_common(self):
        qa = TfidfQA().fit(["the cat sat", "the dog ran", "the bird Hastings"])
        assert qa.idf("hastings") > qa.idf("the")

    def test_tfidf_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfQA().fit([])

    def test_ensemble_validation(self):
        with pytest.raises(ValueError):
            EnsembleQA([])
        with pytest.raises(ValueError):
            EnsembleQA([(LexicalOverlapQA(), -1.0)])


class TestSimulatedBaseline:
    @pytest.fixture(scope="class")
    def model(self, artifacts):
        triples = [(q, c, a) for q, a, c in QA_CASES]
        return build_baseline("BERT-large", "squad11", artifacts.reader, triples)

    def test_known_specs(self):
        assert len(SQUAD_BASELINES) == 9
        assert len(TRIVIAQA_BASELINES) == 9

    def test_unknown_name_rejected(self, artifacts):
        with pytest.raises(KeyError):
            build_baseline("GPT-9", "squad11", artifacts.reader, [])

    def test_difficulty_drops_on_evidence(self, model):
        question, answer, context = QA_CASES[0]
        evidence = "The Denver Broncos defeated the Panthers to earn the Super Bowl title."
        assert model.difficulty(question, evidence, answer) <= model.difficulty(
            question, context, answer
        )

    def test_p_correct_monotone_in_skill(self, model):
        question, answer, context = QA_CASES[0]
        low = SimulatedBaseline(model.spec, model.reader, skill=0.5)
        high = SimulatedBaseline(model.spec, model.reader, skill=50.0)
        assert low.p_correct(question, context, answer) < high.p_correct(
            question, context, answer
        )

    def test_predict_example_deterministic(self, model):
        question, answer, context = QA_CASES[0]
        p1 = model.predict_example(question, context, answer, "ex1")
        p2 = model.predict_example(question, context, answer, "ex1")
        assert p1 == p2

    def test_gold_missing_falls_back_to_reader(self, model):
        pred = model.predict_example(
            "Who led the conquest?", "A sentence without the answer.", "Zorp", "ex2"
        )
        assert pred.text != "Zorp"

    def test_unanswerable_usually_abstains(self, model):
        abstained = 0
        for i in range(20):
            pred = model.predict_example(
                "Which award did he receive?", CORPUS[2], "", f"imp{i}"
            )
            if pred.is_empty:
                abstained += 1
        assert abstained >= 10

    def test_calibration_reaches_target(self, artifacts, squad_dataset):
        triples = squad_dataset.calibration_triples(limit=40)
        model = build_baseline("T5", "squad11", artifacts.reader, triples)
        import numpy as np

        mean_p = np.mean([model.p_correct(q, c, g) for q, c, g in triples])
        assert abs(100 * mean_p - 90.1) < 3.0

    def test_calibration_empty_rejected(self, model):
        with pytest.raises(ValueError):
            model.calibrate([], 80.0)

    def test_error_prediction_is_wrong(self, model):
        # Force errors with zero skill; predictions must not equal gold.
        from repro.metrics import exact_match

        weak = SimulatedBaseline(model.spec, model.reader, skill=1e-6, seed=3)
        question, answer, context = QA_CASES[2]
        wrong = 0
        for i in range(10):
            pred = weak.predict_example(question, context, answer, f"e{i}")
            if not exact_match(pred.text, answer):
                wrong += 1
        assert wrong >= 8


class TestAnswerPrediction:
    def test_empty_factory(self):
        pred = AnswerPrediction.empty()
        assert pred.is_empty
        assert pred.score == float("-inf")
