"""Unit tests for the mini-WordNet and stopword lists."""

from repro.lexicon import (
    MiniWordNet,
    default_wordnet,
    is_insignificant,
    QUESTION_WORDS,
)


class TestStopwords:
    def test_question_words(self):
        assert is_insignificant("Who")
        assert is_insignificant("which")

    def test_auxiliaries(self):
        assert is_insignificant("did")
        assert is_insignificant("was")

    def test_function_words(self):
        assert is_insignificant("the")
        assert is_insignificant("of")

    def test_punctuation(self):
        assert is_insignificant("?")
        assert is_insignificant("...")

    def test_content_words_kept(self):
        for word in ("NFL", "team", "Battle", "born", "champion"):
            assert not is_insignificant(word)

    def test_question_words_frozen(self):
        assert "who" in QUESTION_WORDS


class TestMiniWordNet:
    def test_synonyms(self):
        wn = default_wordnet()
        assert "winner" in wn.synonyms("champion")
        assert "champion" not in wn.synonyms("champion")

    def test_synonyms_unknown_word(self):
        assert default_wordnet().synonyms("zzzzz") == set()

    def test_antonyms_expand_synsets(self):
        wn = default_wordnet()
        antonyms = wn.antonyms("winner")
        assert "loser" in antonyms

    def test_siblings_share_hypernym(self):
        wn = default_wordnet()
        siblings = wn.siblings("team")
        # "league"/"conference" share the "organization" hypernym.
        assert "conference" in siblings
        assert "team" not in siblings

    def test_siblings_exclude_synonyms(self):
        wn = default_wordnet()
        assert wn.siblings("champion").isdisjoint(wn.synonyms("champion"))

    def test_related_is_union(self):
        wn = default_wordnet()
        related = wn.related("win")
        assert wn.synonyms("win") <= related

    def test_case_insensitive(self):
        wn = default_wordnet()
        assert wn.synonyms("Champion") == wn.synonyms("champion")

    def test_contains(self):
        wn = default_wordnet()
        assert "battle" in wn
        assert "qqqq" not in wn

    def test_custom_synsets(self):
        wn = MiniWordNet([(("foo", "bar"), "thing", ("baz",))])
        assert wn.synonyms("foo") == {"bar"}
        assert "baz" in wn.antonyms("foo")

    def test_empty_lemmas_rejected(self):
        import pytest

        wn = MiniWordNet([])
        with pytest.raises(ValueError):
            wn.add_synset((), "thing")

    def test_vocabulary_nonempty(self):
        assert len(default_wordnet().vocabulary) > 300
