"""Deeper coverage of internal behaviours: grammar reachability, CKY unary
closure, OEC tie-breaking and budgets, calibration saturation, rater
discards."""

import pytest

from repro.core.config import GCEDConfig
from repro.core.pipeline import GCED
from repro.eval.human import RaterPanel, RatingRecord
from repro.parsing.cky import CKYParser
from repro.parsing.grammar import Grammar, Rule
from repro.qa.registry import SimulatedBaseline, SQUAD_BASELINES
from tests.conftest import CORPUS, QA_CASES


class TestGrammarInternals:
    def test_unreachable_nonterminal_reported(self):
        grammar = Grammar(
            [
                Rule("TOP", ("S",), 1.0),
                Rule("S", ("NN",), 1.0),
                Rule("ORPHAN", ("VB",), 1.0),
            ]
        )
        issues = grammar.validate()
        assert any("unreachable" in issue for issue in issues)

    def test_non_normalized_reported(self):
        grammar = Grammar(
            [Rule("TOP", ("S",), 0.4), Rule("S", ("NN",), 1.0)]
        )
        issues = grammar.validate()
        assert any("sum" in issue for issue in issues)

    def test_logprob_negative(self):
        rule = Rule("A", ("B",), 0.5)
        assert rule.logprob < 0

    def test_probability_one_logprob_zero(self):
        assert Rule("A", ("B",), 1.0).logprob == 0.0


class TestCKYInternals:
    def test_unary_chain_resolution(self):
        # NN -> NOM -> NML -> NP -> TOP requires a closure of depth 4.
        grammar = Grammar(
            [
                Rule("TOP", ("NP",), 1.0),
                Rule("NP", ("NML",), 1.0),
                Rule("NML", ("NOM",), 1.0),
                Rule("NOM", ("NN",), 1.0),
            ]
        )
        tree = CKYParser(grammar).parse_tags(["NN"], words=["cat"])
        assert tree.label == "TOP"
        labels = [node.label for node in tree]
        assert labels == ["TOP", "NP", "NML", "NOM", "NN"]

    def test_viterbi_prefers_likelier_rule(self):
        grammar = Grammar(
            [
                Rule("TOP", ("A",), 0.9),
                Rule("TOP", ("B",), 0.1),
                Rule("A", ("NN", "NN"), 1.0),
                Rule("B", ("NN", "NN"), 1.0),
            ]
        )
        tree = CKYParser(grammar).parse_tags(["NN", "NN"])
        assert tree.children[0].label == "A"

    def test_glue_fallback_label(self):
        # Grammar that can never span two tokens.
        grammar = Grammar([Rule("TOP", ("NN",), 1.0)])
        tree = CKYParser(grammar).parse_tags(["NN", "NN"], words=["a", "b"])
        assert len(tree.leaves()) == 2


class TestOECInternals:
    @pytest.fixture(scope="class")
    def machinery(self, gced):
        from repro.core.efc import EvidenceForestConstructor
        from repro.text.tokenizer import tokenize

        tokens = tokenize(CORPUS[0].split(". ")[0] + ".")
        tree = gced.wsptc.build(tokens)
        efc = EvidenceForestConstructor()
        question, answer = QA_CASES[0][0], QA_CASES[0][1]
        clues = gced.qws.select(question, tokens).clue_indices
        answers = efc.find_answer_indices(tokens, answer)
        forest = efc.build(tree, clues, answers)
        return gced.oec, forest, question, answer

    def test_candidate_budget_respected(self, machinery):
        oec, forest, question, answer = machinery
        oec_small = type(oec)(oec.scorer, clip_times=1, max_clip_candidates=2)
        nodes, root, _ = oec_small.grow(forest)
        clipped, trace = oec_small.clip(
            forest.tree, nodes, root, forest.protected, question, answer
        )
        assert len(trace) <= 1

    def test_zero_clip_times_is_noop(self, machinery):
        oec, forest, question, answer = machinery
        oec_zero = type(oec)(oec.scorer, clip_times=0)
        nodes, root, _ = oec_zero.grow(forest)
        clipped, trace = oec_zero.clip(
            forest.tree, nodes, root, forest.protected, question, answer
        )
        assert clipped == nodes
        assert trace == []

    def test_render_orders_by_index(self, machinery):
        oec, forest, *_ = machinery
        text = oec.render(forest.tree, {5, 1, 3})
        words = text.split()
        tokens = [forest.tree.token(i) for i in (1, 3, 5)]
        assert words == [w for w in tokens]

    def test_empty_forest_distill(self, machinery, gced):
        oec = machinery[0]
        from repro.core.efc import EvidenceForest

        empty = EvidenceForest(
            tree=machinery[1].tree,
            components=[],
            roots=[],
            protected=frozenset(),
            answer_components=frozenset(),
        )
        text, nodes, grow, clip = oec.distill(empty, "q?", "a")
        assert text == "" and nodes == set()


class TestCalibrationInternals:
    def test_saturates_at_max_skill(self, artifacts):
        model = SimulatedBaseline(SQUAD_BASELINES[0], artifacts.reader)
        # Target 100% with nonzero difficulty floor: unreachable, must
        # saturate instead of looping.
        triples = [(q, c, a) for q, a, c in QA_CASES[:3]]
        skill = model.calibrate(triples, target_em=100.0)
        assert skill == pytest.approx(1e5)

    def test_low_target_low_skill(self, artifacts):
        model = SimulatedBaseline(SQUAD_BASELINES[0], artifacts.reader)
        triples = [(q, c, a) for q, a, c in QA_CASES[:4]]
        low = model.calibrate(triples, target_em=20.0)
        high = SimulatedBaseline(SQUAD_BASELINES[0], artifacts.reader).calibrate(
            triples, target_em=90.0
        )
        assert low < high


class TestRaterPanelInternals:
    def test_noise_increases_discards(self):
        records = [RatingRecord(0.9, 1.2, 0.5)] * 40
        quiet = RaterPanel(seed=0, noise_sd=0.05, item_jitter_sd=0.3)
        loud = RaterPanel(seed=0, noise_sd=1.5, item_jitter_sd=0.3)
        assert (
            loud.rate(records, label="x").n_discarded
            >= quiet.rate(records, label="x").n_discarded
        )

    def test_per_item_scores_unit_interval(self):
        panel = RaterPanel(seed=2)
        outcome = panel.rate([RatingRecord(0.8, 1.3, 0.5)] * 10, label="y")
        for item in outcome.per_item:
            for value in item.values():
                assert 0.0 < value <= 1.0


class TestPipelineAblationPaths:
    def test_without_grow_runs(self, artifacts):
        gced = GCED(
            artifacts.reader, artifacts, config=GCEDConfig().ablate("grow")
        )
        question, answer, context = QA_CASES[2]
        result = gced.distill(question, answer, context)
        assert result.grow_trace == []
        assert result.evidence

    def test_without_ase_uses_whole_context(self, artifacts):
        gced = GCED(
            artifacts.reader, artifacts, config=GCEDConfig().ablate("ase")
        )
        question, answer, context = QA_CASES[2]
        result = gced.distill(question, answer, context)
        assert len(result.ase.sentences) == 3  # all context sentences

    def test_without_qws_no_clues(self, artifacts):
        gced = GCED(
            artifacts.reader, artifacts, config=GCEDConfig().ablate("qws")
        )
        question, answer, context = QA_CASES[2]
        result = gced.distill(question, answer, context)
        assert result.qws.clue_words == ()
        assert result.evidence  # answer tree alone still yields evidence

    def test_criterion_ablation_changes_weights(self, artifacts):
        config = GCEDConfig().ablate("r")
        gced = GCED(artifacts.reader, artifacts, config=config)
        assert gced.scorer.weights.beta == 0.0


class TestDifficultyProperties:
    def test_difficulty_monotone_under_extension(self, artifacts):
        """Appending a distractor sentence never lowers difficulty."""
        model = SimulatedBaseline(SQUAD_BASELINES[0], artifacts.reader)
        question, answer, context = QA_CASES[0]
        extended = context + " The Seattle Seahawks lost to the Green Bay Packers."
        assert model.difficulty(question, extended, answer) >= model.difficulty(
            question, context, answer
        )

    def test_p_correct_in_unit_interval(self, artifacts):
        model = SimulatedBaseline(SQUAD_BASELINES[0], artifacts.reader, skill=3.0)
        for question, answer, context in QA_CASES:
            p = model.p_correct(question, context, answer)
            assert 0.0 < p < 1.0
