"""Unit tests for the sentence splitter."""

from repro.text.sentences import split_sentences


class TestSplitSentences:
    def test_two_sentences(self):
        sents = split_sentences("It rained. The ground was wet.")
        assert [s.text for s in sents] == ["It rained.", "The ground was wet."]

    def test_offsets_roundtrip(self):
        text = "First one here. Second one there! Third?"
        for sent in split_sentences(text):
            assert text[sent.start : sent.end] == sent.text

    def test_abbreviation_not_split(self):
        sents = split_sentences("Dr. Smith arrived. He sat down.")
        assert len(sents) == 2
        assert sents[0].text == "Dr. Smith arrived."

    def test_initials_not_split(self):
        sents = split_sentences("T. S. Eliot wrote poems. They are famous.")
        assert len(sents) == 2

    def test_exclamation_and_question(self):
        sents = split_sentences("Stop! Why? Go.")
        assert [s.text for s in sents] == ["Stop!", "Why?", "Go."]

    def test_no_terminal_punctuation(self):
        sents = split_sentences("a trailing fragment without a period")
        assert len(sents) == 1
        assert sents[0].text == "a trailing fragment without a period"

    def test_empty_string(self):
        assert split_sentences("") == []

    def test_indices_sequential(self):
        sents = split_sentences("One. Two. Three.")
        assert [s.index for s in sents] == [0, 1, 2]

    def test_sentence_tokens_are_local(self):
        sents = split_sentences("First here. Second there.")
        tokens = sents[1].tokens()
        assert tokens[0].text == "Second"
        assert tokens[0].start == 0  # sentence-local offset
