"""Unit tests for dataset IO, CLI, and error analysis."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import (
    from_squad_json,
    load_dataset_json,
    save_dataset,
    to_squad_json,
)


class TestDatasetIO:
    def test_roundtrip(self, squad_dataset, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(squad_dataset, path)
        loaded = load_dataset_json(path, key=squad_dataset.key)
        assert len(loaded.train) == len(squad_dataset.train)
        assert len(loaded.dev) == len(squad_dataset.dev)
        original = {e.example_id: e for e in squad_dataset.train}
        for example in loaded.train:
            source = original[example.example_id]
            assert example.question == source.question
            assert example.answers == source.answers
            assert example.answer_start == source.answer_start

    def test_impossible_roundtrip(self, squad20_dataset, tmp_path):
        path = tmp_path / "ds20.json"
        save_dataset(squad20_dataset, path)
        loaded = load_dataset_json(path)
        impossible_in = sum(
            e.is_impossible for e in squad20_dataset.train + squad20_dataset.dev
        )
        impossible_out = sum(
            e.is_impossible for e in loaded.train + loaded.dev
        )
        assert impossible_in == impossible_out

    def test_squad_schema_shape(self, squad_dataset):
        payload = to_squad_json(squad_dataset)
        assert payload["version"] == squad_dataset.key
        titles = {a["title"] for a in payload["data"]}
        assert titles == {"train", "dev"}
        paragraph = payload["data"][0]["paragraphs"][0]
        assert "context" in paragraph and "qas" in paragraph

    def test_real_squad_format_parses(self):
        # Genuine SQuAD files use article titles; they land in `train`.
        payload = {
            "version": "1.1",
            "data": [
                {
                    "title": "Some_Article",
                    "paragraphs": [
                        {
                            "context": "Paris is the capital of France.",
                            "qas": [
                                {
                                    "id": "q1",
                                    "question": "What is the capital of France?",
                                    "answers": [
                                        {"text": "Paris", "answer_start": 0}
                                    ],
                                }
                            ],
                        }
                    ],
                }
            ],
        }
        dataset = from_squad_json(payload)
        assert len(dataset.train) == 1
        assert dataset.train[0].primary_answer == "Paris"


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_command(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        code = main(
            ["dataset", "squad11", "--out", str(out), "--n-train", "8", "--n-dev", "4"]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == "squad11"

    def test_distill_command(self, capsys):
        code = main(
            [
                "distill",
                "--question", "Who led the Norman conquest of England?",
                "--answer", "William the Conqueror",
                "--context",
                "William the Conqueror led the Norman conquest of England "
                "and won the Battle of Hastings in 1066. He was a duke.",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "William the Conqueror" in output

    def test_distill_with_trace(self, capsys):
        code = main(
            [
                "distill",
                "--question", "When was the Battle of Hastings?",
                "--answer", "1066",
                "--context",
                "The Battle of Hastings happened in 1066. It changed history.",
                "--trace",
            ]
        )
        assert code == 0
        assert "clue words" in capsys.readouterr().out

    def test_distill_missing_inputs(self, capsys):
        code = main(["distill", "--question", "q?", "--answer", "a"])
        assert code == 2

    def test_distill_from_corpus_file(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.txt"
        corpus.write_text(
            "The Battle of Hastings happened in 1066. It changed history.\n"
            "Another paragraph about other things entirely.\n"
        )
        code = main(
            [
                "distill",
                "--question", "When was the Battle of Hastings?",
                "--answer", "1066",
                "--corpus", str(corpus),
            ]
        )
        assert code == 0
        assert "1066" in capsys.readouterr().out

    def test_experiment_reduction(self, capsys):
        code = main(
            [
                "experiment", "reduction",
                "--n-train", "20", "--n-dev", "10", "--n-examples", "6",
            ]
        )
        assert code == 0
        assert "% words" in capsys.readouterr().out


class TestErrorAnalysis:
    def test_analyze_errors_covers_all_examples(self):
        from repro.eval import ExperimentContext
        from repro.eval.error_analysis import analyze_errors

        ctx = ExperimentContext.build("squad11", seed=0, n_train=20, n_dev=12)
        diagnoses = analyze_errors(ctx, n_examples=8)
        assert len(diagnoses) == 8
        for diagnosis in diagnoses:
            assert diagnosis.category in {
                "ok", "low-readability", "low-informativeness",
                "verbose", "long-complex-context",
            }

    def test_mostly_ok_on_squad(self):
        from repro.eval import ExperimentContext
        from repro.eval.error_analysis import analyze_errors

        ctx = ExperimentContext.build("squad11", seed=0, n_train=20, n_dev=12)
        diagnoses = analyze_errors(ctx, n_examples=8)
        ok = sum(1 for d in diagnoses if d.category == "ok")
        assert ok >= 5

    def test_sorted_worst_first(self):
        from repro.eval import ExperimentContext
        from repro.eval.error_analysis import analyze_errors

        ctx = ExperimentContext.build("squad11", seed=0, n_train=20, n_dev=12)
        diagnoses = analyze_errors(ctx, n_examples=8)
        severities = [d.category == "ok" for d in diagnoses]
        # Once "ok" starts it never goes back to a problem category.
        if True in severities:
            first_ok = severities.index(True)
            assert all(severities[first_ok:])


class TestUniformAttention:
    def test_interface_matches(self):
        import numpy as np

        from repro.attention import UniformAttention

        attention = UniformAttention(dim=8)
        tokens = ["a", "b", "c"]
        matrix = attention.attention_matrix(tokens)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert attention.edge_weights(tokens).shape == (3, 3)
        assert attention.encode(tokens).shape == (3, 8)
        assert attention.attention_matrix([]).shape == (0, 0)
