"""Incremental-vs-direct scoring equivalence (the engine's contract).

The incremental candidate-scoring engine (:mod:`repro.core.scoring` +
:mod:`repro.metrics.incremental`) must match the direct path: identical
informativeness and conciseness for any node set, readability (and the
hybrid total) within 1e-9 — the prefix-sum readability path regroups
float additions by surviving run (the summation-order contract in
:mod:`repro.metrics.incremental`) — and the same clip decisions and
final distilled text.  These tests assert that over randomized trees and
clip sequences (including hazard tokens that force the fallback mode)
and over a real squad11 slice with the engine toggled on and off, plus
the cross-call session-reuse guarantees (same paragraph re-distilled →
node-set scores served from cache).
"""

from __future__ import annotations

import random

import pytest

from repro import GCED, QATrainer
from repro.core.config import GCEDConfig
from repro.core.oec import OptimalEvidenceDistiller
from repro.core.scoring import CandidateScoringEngine
from repro.datasets import load_dataset
from repro.metrics.incremental import TreeTokenArtifacts, TrigramTermCache
from repro.metrics.informativeness import InformativenessScorer
from repro.parsing.tree import DependencyTree
from repro.qa.base import QAModel

from tests.conftest import QA_CASES

# Vocabulary mixing in-domain words, punctuation, numbers, and the hazard
# tokens ("-", "%") that defeat per-node token independence.
_SAFE_VOCAB = [
    "Denver", "Broncos", "defeated", "the", "champion", "title", "Super",
    "Bowl", "earn", "game", "played", "stadium", "in", "Santa", "Clara",
    "1066", "Battle", "of", "Hastings", "won", ",", ".", "and", "a",
    "history", "don't", "Knowles-Carter",
]
_HAZARD_VOCAB = _SAFE_VOCAB + ["-", "%", "50"]

# The readability summation-order contract: engine-vs-direct totals agree
# to this absolute tolerance (bit-identical for everything else).
_READABILITY_TOL = 1e-9


def assert_scores_match(got, want):
    """Engine scores vs direct scores, under the 1e-9 readability contract."""
    assert got.informativeness == want.informativeness
    assert got.conciseness == want.conciseness
    if not want.is_valid:
        assert got == want
        return
    assert got.readability == pytest.approx(
        want.readability, abs=_READABILITY_TOL
    )
    assert got.hybrid == pytest.approx(want.hybrid, abs=_READABILITY_TOL)


def assert_clip_traces_match(got, want):
    """Clip decisions must be identical; achieved hybrids within 1e-9."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.clipped_root == w.clipped_root
        assert g.removed_nodes == w.removed_nodes
        assert g.edge_weight == w.edge_weight
        assert g.hybrid_after == pytest.approx(
            w.hybrid_after, abs=_READABILITY_TOL
        )


def _random_tree(rng: random.Random, vocab: list[str], n: int) -> DependencyTree:
    """A random rooted tree over ``n`` tokens (node 0 is the root)."""
    tokens = [rng.choice(vocab) for _ in range(n)]
    parents = [-1] + [rng.randrange(0, i) for i in range(1, n)]
    tree = DependencyTree(tokens, parents)
    for node in range(1, n):
        tree.set_weight(node, rng.random())
    return tree


def _random_evidence(
    rng: random.Random, tree: DependencyTree
) -> tuple[set[int], frozenset[int]]:
    """A random evidence set containing the root, plus protected nodes."""
    n = len(tree)
    evidence = {0} | {i for i in range(1, n) if rng.random() < 0.8}
    pool = sorted(evidence - {0})
    protected = frozenset(rng.sample(pool, k=min(2, len(pool))))
    return evidence, protected


class TestScoreEquivalence:
    """session.score(nodes) equals HybridScorer.score on the rendered text."""

    @pytest.mark.parametrize("vocab", [_SAFE_VOCAB, _HAZARD_VOCAB])
    def test_random_node_sets(self, gced, vocab):
        rng = random.Random(0)
        engine = CandidateScoringEngine(gced.scorer)
        question, answer = "Which team won the title?", "Denver Broncos"
        for _trial in range(25):
            tree = _random_tree(rng, vocab, rng.randrange(4, 30))
            session = engine.session(tree, question, answer)
            universe = list(range(len(tree)))
            for _subset in range(6):
                k = rng.randrange(1, len(tree) + 1)
                nodes = frozenset(rng.sample(universe, k))
                text = OptimalEvidenceDistiller.render(tree, set(nodes))
                direct = gced.scorer.score(question, answer, text)
                assert_scores_match(session.score(nodes), direct)

    def test_short_evidence_is_invalid_both_ways(self, gced):
        tree = DependencyTree(["Denver", "Broncos"], [-1, 0])
        engine = CandidateScoringEngine(gced.scorer)
        session = engine.session(tree, "Who won?", "Denver Broncos")
        nodes = frozenset({0, 1})
        direct = gced.scorer.score(
            "Who won?",
            "Denver Broncos",
            OptimalEvidenceDistiller.render(tree, set(nodes)),
        )
        scores = session.score(nodes)
        assert scores == direct
        assert not scores.is_valid

    def test_node_set_memo_hits_without_rendering(self, gced):
        engine = CandidateScoringEngine(gced.scorer)
        tree = _random_tree(random.Random(3), _SAFE_VOCAB, 12)
        session = engine.session(tree, "Who won the battle?", "the champion")
        nodes = frozenset(range(12))
        first = session.score(nodes)
        hits0 = engine.cache.snapshot()[0]
        assert session.score(nodes) == first
        assert engine.cache.snapshot()[0] == hits0 + 1


class TestClipEquivalence:
    """Full clip sequences agree with the engine on and off."""

    def test_randomized_clip_sequences(self, gced):
        rng = random.Random(1)
        scorer = gced.scorer
        direct_oec = OptimalEvidenceDistiller(scorer, clip_times=3)
        engine_oec = OptimalEvidenceDistiller(
            scorer, clip_times=3, engine=CandidateScoringEngine(scorer)
        )
        question, answer = "Who won the Battle of Hastings?", "the champion"
        for _trial in range(20):
            vocab = _HAZARD_VOCAB if _trial % 3 == 0 else _SAFE_VOCAB
            tree = _random_tree(rng, vocab, rng.randrange(6, 28))
            evidence, protected = _random_evidence(rng, tree)
            got_e, got_t = engine_oec.clip(
                tree, set(evidence), 0, protected, question, answer
            )
            want_e, want_t = direct_oec.clip(
                tree, set(evidence), 0, protected, question, answer
            )
            assert got_e == want_e
            assert_clip_traces_match(got_t, want_t)


class TestIncrementalMetrics:
    def test_trigram_term_cache_matches_lm(self, artifacts):
        lm = artifacts.language_model
        cache = TrigramTermCache(lm)
        rng = random.Random(2)
        words = [w.lower() for w in _SAFE_VOCAB if w.isalpha()]
        for _trial in range(30):
            seq = [rng.choice(words) for _ in range(rng.randrange(1, 20))]
            assert cache.log_probability(seq) == lm.log_probability(seq)
            assert cache.perplexity(seq) == lm.perplexity(seq)
        # Second pass over the same sequences must serve from the term
        # cache and still be exact.
        rng = random.Random(2)
        for _trial in range(30):
            seq = [rng.choice(words) for _ in range(rng.randrange(1, 20))]
            assert cache.log_probability(seq) == lm.log_probability(seq)

    def test_separability_flags_hazard_tokens(self):
        assert TreeTokenArtifacts(["big", "wide", "."]).separable
        assert not TreeTokenArtifacts(["big", "-", "wide"]).separable
        assert not TreeTokenArtifacts(["5", "%"]).separable
        assert not TreeTokenArtifacts(["trailing-"]).separable

    def test_separable_sequence_matches_retokenization(self):
        from repro.text.tokenizer import detokenize, word_tokens

        tokens = ["Denver", "Broncos", ",", "won", "the", "title", ".", "50%"]
        artifacts = TreeTokenArtifacts(tokens)
        assert artifacts.separable
        order = list(range(len(tokens)))
        assert artifacts.sequence(order) == word_tokens(detokenize(tokens))


class TestBatchedInformativeness:
    def test_score_batch_matches_serial(self, artifacts):
        serial = InformativenessScorer(artifacts.reader)
        batched = InformativenessScorer(artifacts.reader)
        question, answer = QA_CASES[0][0], QA_CASES[0][1]
        evidences = [
            QA_CASES[0][2],
            "Denver Broncos won the Super Bowl title.",
            "   ",  # blank short-circuits to 0.0
            "Denver Broncos won the Super Bowl title.",  # duplicate
            "The game was played at a stadium in Santa Clara.",
        ]
        want = [serial.score(question, answer, e) for e in evidences]
        assert batched.score_batch(question, answer, evidences) == want
        # A second call is served fully from the cache.
        hits0 = batched._cache.snapshot()[0]
        assert batched.score_batch(question, answer, evidences) == want
        assert batched._cache.snapshot()[0] > hits0


class TestPredictBatch:
    def test_default_predict_batch_loops(self, artifacts):
        class OneAnswer(QAModel):
            def predict(self, question, context):
                from repro.qa.base import AnswerPrediction

                return AnswerPrediction(context[:3], 0, 3, 1.0)

        model = OneAnswer()
        preds = model.predict_batch("q", ["abcdef", "xyz"])
        assert [p.text for p in preds] == ["abc", "xyz"]

    def test_span_models_batch_equals_serial(self, artifacts):
        question, _answer, context = QA_CASES[0]
        texts = [context, "Denver Broncos earned the title.", ""]
        models = [artifacts.reader] + [m for m, _w in artifacts.reader.members]
        for model in models:
            serial = [model.predict(question, t) for t in texts]
            assert model.predict_batch(question, texts) == serial

    def test_prepared_path_matches_generic_score_span(
        self, artifacts, monkeypatch
    ):
        reader = artifacts.reader
        fast = [reader.predict(q, c) for q, _a, c in QA_CASES]
        # Forcing span_prep to None routes every span through the generic
        # score_span path the prepared tables must replicate exactly; the
        # compiler is disabled so the None prep is not served from a
        # compiled cache populated before the patch.
        for cls in {type(reader)} | {type(m) for m, _w in reader.members}:
            monkeypatch.setattr(
                cls,
                "span_prep",
                lambda self, profile, tokens, compiled=None: None,
            )
        monkeypatch.setitem(reader.__dict__, "_context_compiler", None)
        slow = [reader.predict(q, c) for q, _a, c in QA_CASES]
        assert fast == slow


class TestCrossCallSessionReuse:
    """Sessions are content-keyed: re-distilling a paragraph hits caches."""

    def test_same_content_returns_same_session(self, gced):
        engine = CandidateScoringEngine(gced.scorer)
        rng = random.Random(7)
        tree_a = _random_tree(rng, _SAFE_VOCAB, 14)
        # A structurally different tree over the *same tokens* shares the
        # session: scores depend only on the token sequence.
        tree_b = DependencyTree(
            list(tree_a.tokens), [-1] + [0] * (len(tree_a) - 1)
        )
        first = engine.session(tree_a, "Who won?", "the champion")
        assert engine.session(tree_a, "Who won?", "the champion") is first
        assert engine.session(tree_b, "Who won?", "the champion") is first
        # Different question or answer → different session.
        assert engine.session(tree_a, "Who lost?", "the champion") is not first
        hits, misses, size, _ = engine.sessions.snapshot()
        assert hits == 2 and misses == 2 and size == 2

    def test_repeated_clip_serves_scores_from_cache(self, gced):
        engine = CandidateScoringEngine(gced.scorer)
        oec = OptimalEvidenceDistiller(gced.scorer, clip_times=3, engine=engine)
        rng = random.Random(11)
        tree = _random_tree(rng, _SAFE_VOCAB, 20)
        evidence, protected = _random_evidence(rng, tree)
        question, answer = "Who won the Battle of Hastings?", "the champion"
        first = oec.clip(tree, set(evidence), 0, protected, question, answer)
        _h1, m1 = engine.cache.snapshot()[:2]
        assert m1 > 0
        # Second clip over equal content: every node-set lookup hits, no
        # new misses, identical outputs (same cached float objects).
        again = oec.clip(tree, set(evidence), 0, protected, question, answer)
        h2, m2 = engine.cache.snapshot()[:2]
        assert again == first
        assert m2 == m1
        assert h2 > 0

    def test_batch_redistillation_hits_clip_scores(self, artifacts):
        from repro.core import BatchDistiller

        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        triples = [(q, a, c) for q, a, c in QA_CASES[:3]]
        with BatchDistiller(gced) as first_pass:
            first = first_pass.distill_many(triples)
        engine = gced.scoring_engine
        hits1, misses1 = engine.cache.snapshot()[:2]
        # A fresh distiller defeats the finished-results memo, modelling
        # re-distillation traffic (sweeps, re-asks); the content-keyed
        # sessions still serve every clip score from cache.
        with BatchDistiller(gced) as second_pass:
            second = second_pass.distill_many(triples)
        hits2, misses2 = engine.cache.snapshot()[:2]
        session_hits = engine.sessions.snapshot().hits
        assert [r.evidence for r in second] == [r.evidence for r in first]
        assert [r.scores for r in second] == [r.scores for r in first]
        assert misses2 == misses1
        assert hits2 > hits1
        assert session_hits > 0


class TestPipelineEquivalence:
    """The squad11 harness: identical outputs with the engine on and off."""

    @pytest.fixture(scope="class")
    def squad_setup(self):
        dataset = load_dataset("squad11", seed=1, n_train=40, n_dev=20)
        artifacts = QATrainer(seed=1).train(dataset.contexts())
        return dataset, artifacts

    def test_squad_eval_set_byte_identical(self, squad_setup):
        dataset, artifacts = squad_setup
        on = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            config=GCEDConfig(incremental_scoring=True),
        )
        off = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            config=GCEDConfig(incremental_scoring=False),
        )
        assert on.scoring_engine is not None and off.scoring_engine is None
        for example in dataset.answerable_dev():
            triple = (example.question, example.primary_answer, example.context)
            r_on = on.distill(*triple)
            r_off = off.distill(*triple)
            assert r_on.evidence == r_off.evidence
            assert_scores_match(r_on.scores, r_off.scores)
            assert_clip_traces_match(r_on.clip_trace, r_off.clip_trace)
            assert r_on.reduction == r_off.reduction

    def test_conftest_cases_byte_identical(self, artifacts):
        on = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            config=GCEDConfig(incremental_scoring=True),
        )
        off = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            config=GCEDConfig(incremental_scoring=False),
        )
        for question, answer, context in QA_CASES:
            r_on = on.distill(question, answer, context)
            r_off = off.distill(question, answer, context)
            assert r_on.evidence == r_off.evidence
            assert_scores_match(r_on.scores, r_off.scores)
            assert_clip_traces_match(r_on.clip_trace, r_off.clip_trace)
