"""Robustness / failure-injection tests: the pipeline never crashes on
degenerate or adversarial inputs."""

from hypothesis import given, settings, strategies as st

from repro.text.tokenizer import tokenize
from tests.conftest import CORPUS

printable = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ.,!?0123456789'-",
    min_size=1,
    max_size=120,
)


class TestPipelineRobustness:
    def test_single_word_context(self, gced):
        result = gced.distill("Who won?", "Broncos", "Broncos won easily today.")
        assert isinstance(result.evidence, str)

    def test_answer_not_in_context(self, gced):
        result = gced.distill("Who won?", "Zorps", CORPUS[0])
        assert isinstance(result.evidence, str)  # no crash; may be weak

    def test_punctuation_heavy_context(self, gced):
        context = "Wait... what?! The Broncos -- yes, them -- won (again). Amazing!!!"
        result = gced.distill("Who won?", "Broncos", context)
        assert isinstance(result.evidence, str)

    def test_numeric_answer_and_context(self, gced):
        context = "In 1994, 2,500 people saw 3 games in 2 days. It rained."
        result = gced.distill("How many people attended?", "2,500", context)
        assert isinstance(result.evidence, str)

    def test_very_long_context(self, gced):
        context = " ".join(CORPUS) + " " + " ".join(CORPUS)
        result = gced.distill(
            "Who led the Norman conquest of England?",
            "William the Conqueror",
            context,
        )
        assert result.evidence
        assert result.reduction > 0.5

    def test_answer_equals_context(self, gced):
        result = gced.distill("What?", "Broncos won", "Broncos won.")
        # Evidence must be longer than answer (Eq. 2) or invalid — either
        # way the call must not raise.
        assert isinstance(result.scores.hybrid, float)

    def test_question_all_stopwords(self, gced):
        result = gced.distill("Who did what?", "Broncos", CORPUS[0])
        assert isinstance(result.evidence, str)

    def test_repeated_answer_occurrences(self, gced):
        context = (
            "Broncos beat Panthers. Broncos celebrated. Broncos returned home."
        )
        result = gced.distill("Who beat the Panthers?", "Broncos", context)
        assert "Broncos" in result.evidence

    @given(printable)
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_contexts_never_crash(self, gced, text):
        if not text.strip():
            return
        tokens = tokenize(text)
        if not tokens:
            return
        answer = tokens[0].text
        result = gced.distill("What is mentioned?", answer, text + ".")
        assert isinstance(result.evidence, str)

    @given(printable)
    @settings(max_examples=30, deadline=None)
    def test_fuzzed_questions_never_crash(self, gced, question):
        result = gced.distill(
            question + "?", "Denver Broncos", CORPUS[0]
        )
        assert isinstance(result.evidence, str)


class TestReaderRobustness:
    def test_whitespace_context(self, artifacts):
        assert artifacts.reader.predict("Who?", "   ").is_empty

    def test_punctuation_only_context(self, artifacts):
        pred = artifacts.reader.predict("Who?", "... !!! ???")
        assert isinstance(pred.text, str)

    @given(printable)
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_predict_never_crashes(self, artifacts, text):
        pred = artifacts.reader.predict("What is mentioned here?", text)
        assert isinstance(pred.text, str)


class TestParserRobustness:
    @given(st.lists(st.sampled_from(
        ["the", "cat", "ran", "quickly", "to", "Paris", "in", "1999", ",", "."]
    ), min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_any_token_sequence_parses(self, words):
        from repro.parsing import SyntacticParser

        tree = SyntacticParser().parse(list(words))
        assert len(tree) == len(words)
        assert tree.subtree(tree.root) == set(range(len(words)))
